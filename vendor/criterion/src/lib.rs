//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the criterion API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! plain wall-clock measurement loop (median of timed batches) instead of
//! criterion's statistical machinery.
//!
//! Results print as `bench <name> ... <time>/iter (<iters> iters)`.
//! `--bench`/`--test` CLI arguments and name filters are accepted the way
//! `cargo bench` passes them; under `--test` each benchmark runs exactly
//! once so `cargo test` stays fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Label for a parameterised benchmark, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A two-part id (`function/parameter`).
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The per-benchmark measurement driver handed to bench closures.
pub struct Bencher<'a> {
    mode: &'a Mode,
    /// Measured median time per iteration, filled by `iter*`.
    reported: Option<(Duration, u64)>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// `cargo test` runs each benchmark body once, as criterion does.
    Test,
    /// Timed run: calibrate, then take the median of timed batches.
    Bench { sample_size: usize },
}

impl Bencher<'_> {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.iter_with_setup(|| (), |()| routine());
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is measured.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        let samples = match *self.mode {
            Mode::Test => {
                black_box(routine(setup()));
                self.reported = Some((Duration::ZERO, 1));
                return;
            }
            Mode::Bench { sample_size } => sample_size,
        };
        // Calibrate: grow the batch until one batch takes >= 2ms, so timer
        // resolution never dominates.
        let mut batch: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
        let mut iters_total = 0u64;
        for _ in 0..samples {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            per_iter.push(t0.elapsed() / batch as u32);
            iters_total += batch;
        }
        per_iter.sort_unstable();
        self.reported = Some((per_iter[per_iter.len() / 2], iters_total));
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager, handed to every function registered with
/// [`criterion_group!`].
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Criterion {
    fn run_one(&self, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mode = match self.mode {
            Mode::Test => Mode::Test,
            Mode::Bench { .. } => Mode::Bench { sample_size },
        };
        let mut b = Bencher {
            mode: &mode,
            reported: None,
        };
        f(&mut b);
        match b.reported {
            Some((d, iters)) if matches!(mode, Mode::Bench { .. }) => {
                println!(
                    "bench {name:<48} {:>12}/iter ({iters} iters)",
                    fmt_duration(d)
                );
            }
            _ => println!("bench {name:<48} ok (test mode)"),
        }
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, 50, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        self.criterion.run_one(&name, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        self.criterion
            .run_one(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Entry point used by [`criterion_main!`]; parses the arguments `cargo
/// bench`/`cargo test` pass and runs every registered group.
pub fn run_registered(groups: &[&dyn Fn(&mut Criterion)]) {
    let mut mode = Mode::Bench { sample_size: 50 };
    let mut filter = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => mode = Mode::Test,
            "--bench" => {}
            a if a.starts_with("--") => {}
            a => filter = Some(a.to_string()),
        }
    }
    let mut c = Criterion { mode, filter };
    for g in groups {
        g(&mut c);
    }
}

/// Declares a benchmark group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::run_registered(&[$(&$group),+]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_in_test_mode() {
        let mode = Mode::Test;
        let mut b = Bencher {
            mode: &mode,
            reported: None,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.reported.unwrap().1, 1);
    }

    #[test]
    fn bench_mode_measures_something() {
        let mode = Mode::Bench { sample_size: 3 };
        let mut b = Bencher {
            mode: &mode,
            reported: None,
        };
        b.iter(|| std::hint::black_box(41u64) + 1);
        let (_, iters) = b.reported.unwrap();
        assert!(iters >= 3);
    }
}
