//! Observability layer for the DNS-resilience stack.
//!
//! The paper's claims are statements about *distributions* — failure
//! ratios, resolution latency, cache occupancy over an attack window —
//! so flat counters are not enough. This crate provides the three
//! observability primitives the rest of the workspace threads through
//! its layers:
//!
//! * [`LogHistogram`] — a fixed-bucket log-scale histogram with an
//!   inline bucket array: recording, merging and quantile queries are
//!   allocation-free, so it can sit on the resolver's hot path without
//!   violating the zero-allocation guarantees established in PR 3.
//! * [`Registry`] — named counters and histograms behind pre-registered
//!   [`CounterId`]/[`HistId`] handles, with Prometheus-text rendering
//!   ([`Registry::render_prometheus`]) for scrapes and compact
//!   `name=value` lines ([`Registry::render_compact`]) for `CHAOS TXT`
//!   exposition, plus [`validate_prometheus_text`] to keep the output
//!   format honest in tests and CI.
//! * [`QueryTrace`] — a bounded ring of typed [`TraceEvent`]s recording
//!   one resolution end-to-end (cache probes, referral chase, retries,
//!   backoff, outcome), rendered by [`QueryTrace::explain`].
//!
//! Latency is measured in *virtual* milliseconds inside the simulator
//! and *wall* milliseconds inside the `Resolved` daemon; both feed the
//! same histogram type, so experiment manifests and live scrapes report
//! comparable p50/p90/p99 columns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod trace;

pub use hist::LogHistogram;
pub use registry::{validate_prometheus_text, CounterId, HistId, Registry};
pub use trace::{QueryTrace, TraceEvent, TraceOutcome, DEFAULT_TRACE_CAPACITY};
