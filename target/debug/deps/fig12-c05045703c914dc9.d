/root/repo/target/debug/deps/fig12-c05045703c914dc9.d: crates/dns-bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-c05045703c914dc9.rmeta: crates/dns-bench/src/bin/fig12.rs Cargo.toml

crates/dns-bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
