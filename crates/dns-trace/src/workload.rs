//! Query workload synthesis over a generated universe.

use crate::{QueryEvent, Trace, Universe, Zipf};
use dns_core::{Label, Name, Question, RecordType, SimTime, HOUR};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::f64::consts::TAU;
use std::fmt;

/// Builds a [`Trace`] over a [`Universe`]: Zipf name popularity, diurnal
/// rate modulation, a sprinkling of MX and non-existent-name queries.
///
/// ```rust
/// use dns_trace::{UniverseSpec, WorkloadBuilder};
///
/// let universe = UniverseSpec::small().build(7);
/// let trace = WorkloadBuilder::new("demo", 1, 10, 5_000)
///     .zipf_alpha(0.9)
///     .generate(&universe, 42);
/// assert_eq!(trace.queries.len(), 5_000);
/// assert!(trace.is_sorted());
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    days: u64,
    clients: u32,
    total_queries: u64,
    zipf_alpha: f64,
    nxdomain_fraction: f64,
    mx_fraction: f64,
    diurnal_amplitude: f64,
}

impl WorkloadBuilder {
    /// Starts a workload: `days` of traffic from `clients` clients,
    /// `total_queries` queries in total.
    pub fn new(name: &str, days: u64, clients: u32, total_queries: u64) -> Self {
        WorkloadBuilder {
            name: name.to_string(),
            days,
            clients,
            total_queries,
            zipf_alpha: 1.05,
            nxdomain_fraction: 0.03,
            mx_fraction: 0.05,
            diurnal_amplitude: 0.5,
        }
    }

    /// Sets the popularity skew (default 1.05; DNS name popularity is
    /// classically Zipf with alpha near 1, Jung et al. IMW 2001).
    pub fn zipf_alpha(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Sets the fraction of queries for names that do not exist.
    pub fn nxdomain_fraction(mut self, f: f64) -> Self {
        self.nxdomain_fraction = f;
        self
    }

    /// Sets the fraction of apex queries asking for MX instead of A.
    pub fn mx_fraction(mut self, f: f64) -> Self {
        self.mx_fraction = f;
        self
    }

    /// Sets the day/night swing of the arrival rate (0 = flat,
    /// 1 = nights are silent).
    pub fn diurnal_amplitude(mut self, a: f64) -> Self {
        self.diurnal_amplitude = a.clamp(0.0, 1.0);
        self
    }

    /// Generates the trace deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the universe has no queryable names or `clients == 0`.
    pub fn generate(&self, universe: &Universe, seed: u64) -> Trace {
        assert!(self.clients > 0, "workload needs at least one client");
        let mut rng = StdRng::seed_from_u64(seed);
        let targets = universe.query_targets();
        assert!(!targets.is_empty(), "universe has no queryable names");

        // Two-level popularity, matching how real DNS load concentrates:
        // zones are Zipf-popular (one popular site drags queries to all
        // of its hostnames), and names within a zone are mildly skewed.
        let mut groups: Vec<Vec<Name>> = {
            let mut by_zone: std::collections::HashMap<usize, Vec<Name>> =
                std::collections::HashMap::new();
            for (name, zone_idx) in targets {
                by_zone.entry(zone_idx).or_default().push(name);
            }
            let mut keys: Vec<usize> = by_zone.keys().copied().collect();
            keys.sort_unstable();
            keys.into_iter()
                .map(|k| by_zone.remove(&k).expect("key present"))
                .collect()
        };
        // Shuffle so zone popularity rank is independent of generation
        // order (Fisher–Yates with our seeded rng).
        for i in (1..groups.len()).rev() {
            let j = rng.random_range(0..=i);
            groups.swap(i, j);
        }
        let zone_zipf = Zipf::new(groups.len(), self.zipf_alpha);
        let max_group = groups.iter().map(Vec::len).max().unwrap_or(1);
        let name_zipfs: Vec<Zipf> = (1..=max_group).map(|n| Zipf::new(n, 0.8)).collect();

        // Distribute query counts over hours with a diurnal curve.
        let hours = self.days * 24;
        let weights: Vec<f64> = (0..hours).map(|h| self.diurnal_weight(h % 24)).collect();
        let total_weight: f64 = weights.iter().sum();
        let mut counts: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total_weight) * self.total_queries as f64).floor() as u64)
            .collect();
        let mut assigned: u64 = counts.iter().sum();
        // Distribute the rounding remainder deterministically.
        let n_hours = counts.len();
        let mut h = 0;
        while assigned < self.total_queries {
            counts[h % n_hours] += 1;
            assigned += 1;
            h += 1;
        }

        let mut queries = Vec::with_capacity(self.total_queries as usize);
        for (hour, &count) in counts.iter().enumerate() {
            let hour_start = hour as u64 * HOUR;
            let mut offsets: Vec<u64> = (0..count).map(|_| rng.random_range(0..HOUR)).collect();
            offsets.sort_unstable();
            for off in offsets {
                let group = &groups[zone_zipf.sample(&mut rng)];
                let name = &group[name_zipfs[group.len() - 1].sample(&mut rng)];
                let question = self.make_question(name, &mut rng);
                queries.push(QueryEvent {
                    at: SimTime::from_secs(hour_start + off),
                    client: rng.random_range(0..self.clients),
                    question,
                });
            }
        }

        Trace {
            name: self.name.clone(),
            days: self.days,
            clients: self.clients,
            queries,
        }
    }

    fn make_question(&self, name: &Name, rng: &mut StdRng) -> Question {
        let roll: f64 = rng.random();
        if roll < self.nxdomain_fraction {
            // A name that cannot exist in the generated universe: the
            // generator never emits an `nx…` label.
            let k: u32 = rng.random_range(0..1000);
            let zone = name.parent().unwrap_or_else(Name::root);
            let label = Label::new(format!("nx{k}").as_bytes()).expect("valid label");
            if let Ok(nx) = zone.child(label) {
                return Question::new(nx, RecordType::A);
            }
        } else if roll < self.nxdomain_fraction + self.mx_fraction {
            return Question::new(name.clone(), RecordType::Mx);
        }
        Question::new(name.clone(), RecordType::A)
    }

    fn diurnal_weight(&self, hour_of_day: u64) -> f64 {
        // Peak mid-afternoon, trough early morning.
        let phase = (hour_of_day as f64 - 15.0) / 24.0 * TAU;
        1.0 + self.diurnal_amplitude * phase.cos()
    }
}

impl fmt::Display for WorkloadBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload {} ({}d, {} clients, {} queries)",
            self.name, self.days, self.clients, self.total_queries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseSpec;

    fn universe() -> Universe {
        UniverseSpec::small().build(7)
    }

    fn gen(total: u64) -> Trace {
        WorkloadBuilder::new("T", 2, 20, total).generate(&universe(), 42)
    }

    #[test]
    fn exact_query_count_and_sorted() {
        let t = gen(10_000);
        assert_eq!(t.queries.len(), 10_000);
        assert!(t.is_sorted());
        // All timestamps within the trace horizon.
        let horizon = SimTime::from_days(2);
        assert!(t.queries.iter().all(|q| q.at < horizon));
    }

    #[test]
    fn deterministic_given_seed() {
        let u = universe();
        let a = WorkloadBuilder::new("T", 1, 5, 2_000).generate(&u, 1);
        let b = WorkloadBuilder::new("T", 1, 5, 2_000).generate(&u, 1);
        assert_eq!(a, b);
        let c = WorkloadBuilder::new("T", 1, 5, 2_000).generate(&u, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_skewed() {
        let t = gen(20_000);
        let mut counts: std::collections::HashMap<&Name, usize> = std::collections::HashMap::new();
        for q in &t.queries {
            *counts.entry(&q.question.name).or_default() += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top name should dwarf the median (Zipf head).
        let median = sorted[sorted.len() / 2];
        assert!(
            sorted[0] > median * 10,
            "head {} median {}",
            sorted[0],
            median
        );
    }

    #[test]
    fn diurnal_variation_present() {
        let t = WorkloadBuilder::new("T", 2, 20, 48_000)
            .diurnal_amplitude(0.8)
            .generate(&universe(), 9);
        let hour = |h: u64| {
            t.queries_between(SimTime::from_hours(h), SimTime::from_hours(h + 1))
                .len()
        };
        // 15:00 (peak) vs 03:00 (trough) on day one.
        assert!(
            hour(15) > hour(3) * 2,
            "peak {} trough {}",
            hour(15),
            hour(3)
        );
    }

    #[test]
    fn query_mix_includes_mx_and_nxdomain() {
        let t = WorkloadBuilder::new("T", 1, 10, 20_000)
            .nxdomain_fraction(0.05)
            .mx_fraction(0.05)
            .generate(&universe(), 3);
        let mx = t
            .queries
            .iter()
            .filter(|q| q.question.rtype == RecordType::Mx)
            .count();
        let nx = t
            .queries
            .iter()
            .filter(|q| {
                q.question
                    .name
                    .labels()
                    .next()
                    .is_some_and(|l| l.starts_with(b"nx"))
            })
            .count();
        assert!((600..=1_400).contains(&mx), "mx {mx}");
        assert!((600..=1_400).contains(&nx), "nx {nx}");
    }

    #[test]
    fn clients_all_appear() {
        let t = gen(20_000);
        let distinct: std::collections::HashSet<u32> = t.queries.iter().map(|q| q.client).collect();
        assert_eq!(distinct.len(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        WorkloadBuilder::new("T", 1, 0, 10).generate(&universe(), 1);
    }
}
