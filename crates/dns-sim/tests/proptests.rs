//! Property-based tests for simulation invariants: conservation laws,
//! determinism and attack monotonicity over randomized workloads.

use dns_core::{SimDuration, SimTime, Ttl};
use dns_resolver::{RenewalPolicy, ResolverConfig};
use dns_sim::{AttackScenario, SimConfig, Simulation};
use dns_trace::{Trace, Universe, UniverseSpec, WorkloadBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared small universe — generation is deterministic, so sharing it
/// across cases only saves time.
fn universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| {
        let mut spec = UniverseSpec::small();
        spec.sld_count = 400;
        spec.tld_count = 15;
        spec.build(99)
    })
}

fn arb_config() -> impl Strategy<Value = ResolverConfig> {
    prop_oneof![
        Just(ResolverConfig::vanilla()),
        Just(ResolverConfig::with_refresh()),
        (1u32..=5).prop_map(|c| ResolverConfig::with_renewal(RenewalPolicy::lru(c))),
        (1u32..=5).prop_map(|c| ResolverConfig::with_renewal(RenewalPolicy::adaptive_lfu(c))),
    ]
}

fn trace(seed: u64, queries: u64) -> Trace {
    WorkloadBuilder::new("prop", 2, 5, queries).generate(universe(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: every trace query is processed exactly once; failure
    /// and hit counters never exceed their denominators; the network sees
    /// exactly the resolver's outgoing queries.
    #[test]
    fn counters_are_conserved(seed in 0u64..1_000, config in arb_config()) {
        let t = trace(seed, 800);
        let n = t.queries.len() as u64;
        let mut sim = Simulation::new(universe(), t, SimConfig::new(config));
        sim.run_to_end();
        let m = sim.metrics();
        prop_assert_eq!(m.queries_in, n);
        prop_assert!(m.failed_in <= m.queries_in);
        prop_assert!(m.cache_hits <= m.queries_in - m.failed_in);
        prop_assert!(m.failed_out <= m.queries_out);
        prop_assert!(m.renewals_ok <= m.renewals_sent);
        let net = sim.net().stats();
        prop_assert_eq!(net.total(), m.queries_out);
        prop_assert_eq!(net.delivered, m.queries_out - m.failed_out);
        prop_assert_eq!(net.unroutable, 0);
    }

    /// With no attack and a consistent universe, nothing fails.
    #[test]
    fn no_attack_no_failures(seed in 0u64..1_000, config in arb_config()) {
        let t = trace(seed, 500);
        let mut sim = Simulation::new(universe(), t, SimConfig::new(config));
        sim.run_to_end();
        prop_assert_eq!(sim.metrics().failed_in, 0);
        prop_assert_eq!(sim.metrics().failed_out, 0);
    }

    /// Forks are perfect copies: running the original and the fork from
    /// the same point yields identical counters.
    #[test]
    fn fork_is_deterministic(seed in 0u64..1_000) {
        let t = trace(seed, 600);
        let mut sim = Simulation::new(
            universe(),
            t,
            SimConfig::new(ResolverConfig::with_refresh()),
        );
        sim.run_until(SimTime::from_days(1));
        let mut fork = sim.fork();
        sim.run_to_end();
        fork.run_to_end();
        prop_assert_eq!(sim.metrics(), fork.metrics());
    }

    /// An attack never *reduces* client-visible failures, and removing it
    /// restores the baseline.
    #[test]
    fn attack_is_monotone_harmful(seed in 0u64..500, hours in 1u64..12) {
        let t = trace(seed, 800);
        let start = SimTime::from_days(1);
        let run = |attacked: bool| {
            let mut sim = Simulation::new(
                universe(),
                t.clone(),
                SimConfig::new(ResolverConfig::vanilla()),
            );
            if attacked {
                sim.set_attack(
                    AttackScenario::root_and_tlds(start, SimDuration::from_hours(hours))
                        .compile(universe()),
                );
            }
            sim.run_to_end();
            sim.metrics().failed_in
        };
        prop_assert_eq!(run(false), 0);
        prop_assert!(run(true) >= run(false));
    }

    /// The long-TTL override never increases failures for a refreshing
    /// resolver under the standard attack.
    #[test]
    fn long_ttl_never_hurts_sr_failures(seed in 0u64..200) {
        let t = trace(seed, 800);
        let start = SimTime::from_days(1);
        let attack = AttackScenario::root_and_tlds(start, SimDuration::from_hours(6));
        let run = |long_ttl: Option<Ttl>| {
            let mut config = SimConfig::new(ResolverConfig::with_refresh());
            if let Some(ttl) = long_ttl {
                config = config.long_ttl(ttl);
            }
            let mut sim = Simulation::new(universe(), t.clone(), config);
            sim.set_attack(attack.compile(universe()));
            sim.run_to_end();
            sim.metrics().failed_in
        };
        let short = run(None);
        let long = run(Some(Ttl::from_days(7)));
        prop_assert!(long <= short, "long-ttl {long} vs baseline {short}");
    }
}
