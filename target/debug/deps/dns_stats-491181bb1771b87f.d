/root/repo/target/debug/deps/dns_stats-491181bb1771b87f.d: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libdns_stats-491181bb1771b87f.rmeta: crates/dns-stats/src/lib.rs crates/dns-stats/src/cdf.rs crates/dns-stats/src/histogram.rs crates/dns-stats/src/manifest.rs crates/dns-stats/src/plot.rs crates/dns-stats/src/summary.rs crates/dns-stats/src/table.rs Cargo.toml

crates/dns-stats/src/lib.rs:
crates/dns-stats/src/cdf.rs:
crates/dns-stats/src/histogram.rs:
crates/dns-stats/src/manifest.rs:
crates/dns-stats/src/plot.rs:
crates/dns-stats/src/summary.rs:
crates/dns-stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
