//! Micro-benchmarks for the RFC 1035 wire codec.

use criterion::{criterion_group, criterion_main, Criterion};
use dns_core::{wire, Message, Name, Question, RData, Record, RecordType, Ttl};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn query_message() -> Message {
    Message::query(77, Question::new(name("www.cs.ucla.edu"), RecordType::A))
}

fn referral_message() -> Message {
    let mut m = Message::response_to(&query_message());
    for i in 1..=3u8 {
        m.authorities.push(Record::new(
            name("ucla.edu"),
            Ttl::from_days(1),
            RData::Ns(name(&format!("ns{i}.ucla.edu"))),
        ));
        m.additionals.push(Record::new(
            name(&format!("ns{i}.ucla.edu")),
            Ttl::from_days(1),
            RData::A(Ipv4Addr::new(192, 0, 2, i)),
        ));
    }
    m
}

fn bench_wire(c: &mut Criterion) {
    let query = query_message();
    let referral = referral_message();
    let query_bytes = wire::encode(&query).unwrap();
    let referral_bytes = wire::encode(&referral).unwrap();

    c.bench_function("wire/encode_query", |b| {
        b.iter(|| wire::encode(black_box(&query)).unwrap())
    });
    c.bench_function("wire/encode_referral", |b| {
        b.iter(|| wire::encode(black_box(&referral)).unwrap())
    });
    c.bench_function("wire/decode_query", |b| {
        b.iter(|| wire::decode(black_box(&query_bytes)).unwrap())
    });
    c.bench_function("wire/decode_referral", |b| {
        b.iter(|| wire::decode(black_box(&referral_bytes)).unwrap())
    });
    c.bench_function("wire/roundtrip_referral", |b| {
        b.iter(|| {
            let bytes = wire::encode(black_box(&referral)).unwrap();
            wire::decode(&bytes).unwrap()
        })
    });
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
