//! Bring your own workload: export a universe and trace to the text
//! format, edit or substitute real data, and replay it through the
//! simulator.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use dns_resilience::prelude::*;
use dns_resilience::trace::io::{load_trace, load_universe, save_trace, save_universe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate and export — in a real deployment you would instead
    //    convert a packet capture into this line format (one `q` line per
    //    stub-resolver query; see dns_trace::io for the grammar).
    let universe = UniverseSpec::small().build(7);
    let trace = TraceSpec::demo().scaled(0.2).generate(&universe, 11);

    let dir = std::env::temp_dir().join("dns-resilience-example");
    std::fs::create_dir_all(&dir)?;
    let upath = dir.join("universe.txt");
    let tpath = dir.join("trace.txt");
    save_universe(std::fs::File::create(&upath)?, &universe)?;
    save_trace(std::fs::File::create(&tpath)?, &trace)?;
    println!("exported {} and {}", upath.display(), tpath.display());

    // 2. Load them back — this is where your own files would enter.
    let universe = load_universe(std::fs::File::open(&upath)?)?;
    let trace = load_trace(std::fs::File::open(&tpath)?)?;
    println!(
        "loaded universe ({} zones) and trace ({} queries)",
        universe.zone_count(),
        trace.queries.len()
    );

    // 3. Replay under attack with the combined scheme.
    let mut config = SimConfig::new(ResolverConfig::with_renewal(RenewalPolicy::adaptive_lfu(3)));
    config = config.long_ttl(Ttl::from_days(3));
    let mut sim = Simulation::new(&universe, trace, config);
    let start = SimTime::from_days(6);
    sim.set_attack(
        AttackScenario::root_and_tlds(start, SimDuration::from_hours(6)).compile(&universe),
    );
    sim.run_until(start);
    let before = sim.metrics();
    sim.run_until(start + SimDuration::from_hours(6));
    let window = sim.metrics() - before;
    println!(
        "attack window: {:.2}% of {} client queries failed",
        window.failed_in_ratio() * 100.0,
        window.queries_in
    );
    Ok(())
}
