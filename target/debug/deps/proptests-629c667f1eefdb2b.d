/root/repo/target/debug/deps/proptests-629c667f1eefdb2b.d: crates/dns-sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-629c667f1eefdb2b.rmeta: crates/dns-sim/tests/proptests.rs Cargo.toml

crates/dns-sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
