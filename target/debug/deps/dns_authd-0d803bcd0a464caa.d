/root/repo/target/debug/deps/dns_authd-0d803bcd0a464caa.d: crates/dns-netd/src/bin/dns-authd.rs Cargo.toml

/root/repo/target/debug/deps/libdns_authd-0d803bcd0a464caa.rmeta: crates/dns-netd/src/bin/dns-authd.rs Cargo.toml

crates/dns-netd/src/bin/dns-authd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
