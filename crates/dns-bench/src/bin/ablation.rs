//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **LFU credit cap `M`** — the paper bounds LFU credit by an
//!    unspecified maximum; we default to 20. How sensitive are the
//!    results to that choice?
//! 2. **Workload skew** — the two-level Zipf exponent we chose (1.05).
//!    Does the schemes' ordering survive a flatter or sharper workload?
//!
//! Run with `DNS_REPRO_SCALE=0.3` for a quick pass.

use dns_bench::{emit, pct, Lab};
use dns_core::{SimDuration, SimTime};
use dns_resolver::RenewalPolicy;
use dns_sim::experiment::{Scheme, ATTACK_START_DAY};
use dns_sim::ExperimentSpec;
use dns_stats::Table;
use dns_trace::{TraceSpec, WorkloadBuilder};

fn main() {
    let mut lab = Lab::new();
    let spec = TraceSpec::TRC1;
    let start = SimTime::from_days(ATTACK_START_DAY);
    let durations = [SimDuration::from_hours(6)];

    // --- Ablation 1: LFU credit cap -------------------------------------
    // The cap does not appear in the scheme label, so Lab's memo would
    // collapse all cap values into one run: sweep directly instead, all
    // five caps as one parallel engine run (outcomes zip with `caps` by
    // spec order).
    let caps = [5u32, 10, 20, 50, 1000];
    let trc1 = lab.trace(&spec);
    let farm = lab.farm(None);
    let outcome = ExperimentSpec::new(lab.universe())
        .trace(trc1)
        .schemes(caps.iter().map(|&cap| {
            Scheme::renewal(RenewalPolicy::Lfu {
                credit: 3,
                max_credit: cap,
            })
        }))
        .farm(None, farm)
        .attack(start, &durations)
        .run();
    let mut cap_table = Table::new(vec!["Cap M", "LFU_3 SR %", "LFU_3 CS %"]);
    cap_table.numeric();
    for (cap, o) in caps.iter().zip(&outcome.attacks) {
        cap_table.row(vec![
            cap.to_string(),
            pct(o.sr_failed_pct),
            pct(o.cs_failed_pct),
        ]);
    }
    lab.record_manifest(outcome.manifest);
    emit(
        "Ablation: LFU credit cap M (6h attack, TRC1)",
        "ablation_lfu_cap",
        &cap_table,
    );

    // --- Ablation 2: workload skew --------------------------------------
    // 4 traces × 3 schemes, one parallel engine run; attacks arrive
    // trace-major so row t reads outcomes [3t .. 3t+3].
    let alphas = [0.7, 0.9, 1.05, 1.2];
    let schemes = [
        Scheme::vanilla(),
        Scheme::refresh(),
        Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),
    ];
    let farm = lab.farm(None);
    let outcome = ExperimentSpec::new(lab.universe())
        .traces(alphas.iter().map(|&alpha| {
            WorkloadBuilder::new(
                &format!("skew{alpha}"),
                7,
                spec.clients,
                spec.total_queries / 2,
            )
            .zipf_alpha(alpha)
            .generate(lab.universe(), 42)
        }))
        .schemes(schemes)
        .farm(None, farm)
        .attack(start, &durations)
        .run();
    let mut skew_table = Table::new(vec![
        "Zipf alpha",
        "DNS SR %",
        "refresh SR %",
        "A-LFU_3 SR %",
    ]);
    skew_table.numeric();
    for (t, alpha) in alphas.iter().enumerate() {
        let row = &outcome.attacks[t * schemes.len()..(t + 1) * schemes.len()];
        skew_table.row(vec![
            format!("{alpha:.2}"),
            pct(row[0].sr_failed_pct),
            pct(row[1].sr_failed_pct),
            pct(row[2].sr_failed_pct),
        ]);
    }
    lab.record_manifest(outcome.manifest);
    emit(
        "Ablation: workload Zipf skew (6h attack)",
        "ablation_skew",
        &skew_table,
    );
    lab.emit_manifest();
    println!("Takeaways: raising the LFU cap helps popular zones accumulate more");
    println!("renewals, with diminishing returns once demand (not M) bounds the");
    println!("credit; and the scheme ordering — vanilla ≫ refresh ≫ adaptive");
    println!("renewal — holds across workload skews, with absolute levels");
    println!("shifting with cacheability, exactly as EXPERIMENTS.md cautions.");
}
