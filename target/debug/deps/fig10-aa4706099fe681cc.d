/root/repo/target/debug/deps/fig10-aa4706099fe681cc.d: crates/dns-bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-aa4706099fe681cc.rmeta: crates/dns-bench/src/bin/fig10.rs Cargo.toml

crates/dns-bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
