/root/repo/target/debug/deps/ablation-af24694096d9b2d8.d: crates/dns-bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-af24694096d9b2d8: crates/dns-bench/src/bin/ablation.rs

crates/dns-bench/src/bin/ablation.rs:
