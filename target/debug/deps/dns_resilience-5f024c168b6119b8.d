/root/repo/target/debug/deps/dns_resilience-5f024c168b6119b8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdns_resilience-5f024c168b6119b8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
