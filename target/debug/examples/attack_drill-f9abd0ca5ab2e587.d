/root/repo/target/debug/examples/attack_drill-f9abd0ca5ab2e587.d: examples/attack_drill.rs

/root/repo/target/debug/examples/attack_drill-f9abd0ca5ab2e587: examples/attack_drill.rs

examples/attack_drill.rs:
