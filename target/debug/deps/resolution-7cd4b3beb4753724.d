/root/repo/target/debug/deps/resolution-7cd4b3beb4753724.d: crates/dns-resolver/tests/resolution.rs

/root/repo/target/debug/deps/resolution-7cd4b3beb4753724: crates/dns-resolver/tests/resolution.rs

crates/dns-resolver/tests/resolution.rs:
