/root/repo/target/debug/deps/dnssec_universe-d2bf84627743259b.d: tests/dnssec_universe.rs

/root/repo/target/debug/deps/dnssec_universe-d2bf84627743259b: tests/dnssec_universe.rs

tests/dnssec_universe.rs:
