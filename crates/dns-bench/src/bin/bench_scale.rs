//! Internet-scale namespace and trace-streaming benchmark: builds
//! interned namespaces at 10k / 100k / 1M zones, streams seeded query
//! traffic over each without ever materializing a trace, and writes
//! `BENCH_scale.json` — the tracked memory/throughput trajectory for the
//! scale path.
//!
//! Alongside per-scale generation throughput and allocations-per-query
//! (via the counting global allocator), the binary records the process
//! peak RSS after each scale and the RSS growth from streaming 10× more
//! queries at the largest scale — the direct evidence that replay memory
//! is bounded by the namespace, not the query count. A small streamed
//! attack sweep exercises the full `dns-sim` replay path end to end.
//!
//!   cargo run --release -p dns-bench --bin bench_scale [-- --smoke]
//!
//! Environment:
//! * `DNS_BENCH_OUT` — output path (default `BENCH_scale.json`).

use dns_core::{SimDuration, SimTime};
use dns_sim::experiment::{paper_durations, Scheme, ATTACK_START_DAY};
use dns_sim::{peak_rss_kb, ExperimentSpec};
use dns_trace::{TraceSpec, UniverseSpec, WorkloadBuilder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Allocation counter maintained by the global allocator below (same
/// pattern as `bench_resolve`; only bench builds pay for it).
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter updates are
// side-effect-free atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Relaxed)
}

fn scale_label(slds: usize) -> String {
    if slds >= 1_000_000 {
        format!("{}m", slds / 1_000_000)
    } else {
        format!("{}k", slds / 1_000)
    }
}

fn spec_for(slds: usize) -> UniverseSpec {
    UniverseSpec {
        sld_count: slds,
        ..UniverseSpec::standard()
    }
}

struct ScaleResult {
    label: String,
    zones: usize,
    build_secs: f64,
    arena_bytes: usize,
    interned_names: usize,
    heap_bytes: usize,
    gen_qps: f64,
    gen_allocs_per_query: f64,
    peak_rss_kb: u64,
}

/// Builds the interned namespace for `slds` second-level zones and
/// streams `queries` seeded queries over it, measuring generation
/// throughput and allocations per query.
fn run_scale(slds: usize, queries: u64) -> ScaleResult {
    let label = scale_label(slds);
    let start = Instant::now();
    let ns = spec_for(slds).build_interned(7);
    let build_secs = start.elapsed().as_secs_f64();

    let wb = WorkloadBuilder::new("SCALE", 1, 1_000, queries);
    let a0 = allocs();
    let start = Instant::now();
    let mut emitted: u64 = 0;
    for event in wb.stream(&ns, 42) {
        black_box(&event);
        emitted += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    let gen_allocs = allocs() - a0;
    assert_eq!(emitted, queries, "stream must emit the full trace");

    let result = ScaleResult {
        label,
        zones: ns.zone_count(),
        build_secs,
        arena_bytes: ns.arena_bytes(),
        interned_names: ns.name_count(),
        heap_bytes: ns.heap_bytes(),
        gen_qps: emitted as f64 / wall,
        gen_allocs_per_query: gen_allocs as f64 / emitted as f64,
        peak_rss_kb: peak_rss_kb(),
    };
    println!(
        "scale {}: {} zones, arena {:.1} MiB, built in {:.2}s, \
         streamed {} queries at {:.0} qps ({:.3} allocs/query), peak RSS {} KiB",
        result.label,
        result.zones,
        result.arena_bytes as f64 / (1 << 20) as f64,
        result.build_secs,
        emitted,
        result.gen_qps,
        result.gen_allocs_per_query,
        result.peak_rss_kb,
    );
    result
}

/// Streams `queries` events over `ns` and reports the VmHWM afterwards —
/// called with Q and then 10×Q to show RSS does not scale with the query
/// count (the trace is never materialized).
fn rss_after_streaming(ns: &dns_trace::InternedNamespace, queries: u64) -> u64 {
    let wb = WorkloadBuilder::new("SCALE", 1, 1_000, queries);
    for event in wb.stream(ns, 43) {
        black_box(&event);
    }
    peak_rss_kb()
}

/// A small end-to-end streamed attack sweep (warm-up, per-duration
/// cursor-resumed forks) — the replay path the scale numbers feed.
fn run_streamed_sweep() -> (u64, f64, u64) {
    let universe = UniverseSpec::small().build(7);
    let start = Instant::now();
    let outcome = ExperimentSpec::new(&universe)
        .stream_trace(TraceSpec::demo().scaled(0.2), 42)
        .scheme(Scheme::vanilla())
        .attack(SimTime::from_days(ATTACK_START_DAY), &paper_durations())
        .overhead(SimDuration::from_hours(12))
        .threads(1)
        .run();
    let wall = start.elapsed().as_secs_f64();
    let queries: u64 = outcome.manifest.units.iter().map(|u| u.queries).sum();
    let rss = outcome
        .manifest
        .units
        .iter()
        .map(|u| u.peak_rss_kb)
        .max()
        .unwrap_or(0);
    assert!(
        outcome.attacks.iter().any(|a| a.window.failed_in > 0),
        "streamed attack sweep must observe failures"
    );
    (queries, wall, rss)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = std::env::var("DNS_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());

    // Ascending zone counts: each scale's VmHWM reading reflects the
    // largest namespace built so far, i.e. its own.
    let (scales, queries_per_scale): (&[usize], u64) = if smoke {
        (&[1_000, 10_000, 50_000], 20_000)
    } else {
        (&[10_000, 100_000, 1_000_000], 200_000)
    };

    let mut results: Vec<ScaleResult> = Vec::new();
    for &slds in scales {
        results.push(run_scale(slds, queries_per_scale));
    }

    // Memory-boundedness evidence at the largest scale: stream Q and
    // then 10×Q queries; materialized replay would grow RSS by ~64+
    // bytes/query (hundreds of MiB at full scale), streaming only by the
    // per-hour offset buffer.
    let ns = spec_for(*scales.last().expect("scales non-empty")).build_interned(7);
    let rss_base = rss_after_streaming(&ns, queries_per_scale);
    let rss_10x = rss_after_streaming(&ns, queries_per_scale * 10);
    let rss_growth = rss_10x.saturating_sub(rss_base);
    println!(
        "rss growth streaming 10x queries at {}: {} KiB (base {} KiB)",
        scale_label(*scales.last().expect("scales non-empty")),
        rss_growth,
        rss_base,
    );
    drop(ns);

    let (sweep_queries, sweep_wall, sweep_rss) = run_streamed_sweep();
    println!(
        "streamed sweep: {sweep_queries} queries in {sweep_wall:.2}s, unit peak RSS {sweep_rss} KiB"
    );

    let mut scale_fields = String::new();
    for r in &results {
        scale_fields.push_str(&format!(
            "  \"zones_{l}\": {},\n  \"build_secs_{l}\": {:.3},\n  \
             \"arena_bytes_{l}\": {},\n  \"interned_names_{l}\": {},\n  \
             \"heap_bytes_{l}\": {},\n  \"gen_qps_{l}\": {:.1},\n  \
             \"gen_allocs_per_query_{l}\": {:.4},\n  \"peak_rss_kb_{l}\": {},\n",
            r.zones,
            r.build_secs,
            r.arena_bytes,
            r.interned_names,
            r.heap_bytes,
            r.gen_qps,
            r.gen_allocs_per_query,
            r.peak_rss_kb,
            l = r.label,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"schema_version\": 1,\n  \
         \"smoke\": {smoke},\n  \"queries_per_scale\": {queries_per_scale},\n\
         {scale_fields}  \
         \"rss_growth_kb_10x_queries\": {rss_growth},\n  \
         \"sweep_queries\": {sweep_queries},\n  \
         \"sweep_wall_secs\": {sweep_wall:.3},\n  \
         \"sweep_peak_rss_kb\": {sweep_rss}\n}}\n",
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    println!("[benchmark written to {out_path}]");
}
