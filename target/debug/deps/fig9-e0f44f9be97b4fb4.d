/root/repo/target/debug/deps/fig9-e0f44f9be97b4fb4.d: crates/dns-bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-e0f44f9be97b4fb4: crates/dns-bench/src/bin/fig9.rs

crates/dns-bench/src/bin/fig9.rs:
