//! Paper §4 discussion: "this modification reduces overall DNS traffic
//! and improves DNS query response time since costly walks of the DNS
//! tree are avoided."
//!
//! Response time in the simulator is proxied by *upstream round trips per
//! client query* — every authoritative query is one network RTT a real
//! client would wait for. Prints the proxy per scheme on TRC1, no attack.

use dns_bench::{emit, Lab};
use dns_core::{SimDuration, Ttl};
use dns_resolver::RenewalPolicy;
use dns_sim::experiment::Scheme;
use dns_stats::Table;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    let spec = TraceSpec::TRC1;
    let sample = SimDuration::from_days(1);

    let schemes = [
        ("DNS".to_string(), Scheme::vanilla()),
        ("Refresh".to_string(), Scheme::refresh()),
        (
            "A-LFU_3".to_string(),
            Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),
        ),
        (
            "Long-TTL 7d".to_string(),
            Scheme::refresh_long_ttl(Ttl::from_days(7)),
        ),
        (
            "Combination".to_string(),
            Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)),
        ),
    ];

    let mut table = Table::new(vec![
        "Scheme",
        "Upstream RTTs / client query",
        "Cache hit %",
        "Referrals / 1k queries",
    ]);
    table.numeric();
    // One parallel sweep covers all five schemes before the reads below.
    let scheme_list: Vec<Scheme> = schemes.iter().map(|(_, s)| *s).collect();
    lab.overhead_grid(std::slice::from_ref(&spec), &scheme_list, sample);
    for (label, scheme) in schemes {
        let out = lab.overhead(&spec, scheme, sample);
        let m = out.metrics;
        // Renewal traffic is proactive (client never waits on it), so the
        // latency proxy excludes it.
        let demand_out = m.queries_out.saturating_sub(m.renewals_sent);
        table.row(vec![
            label,
            format!("{:.3}", demand_out as f64 / m.queries_in as f64),
            format!("{:.1}", m.hit_ratio() * 100.0),
            format!("{:.1}", m.referrals as f64 / m.queries_in as f64 * 1_000.0),
        ]);
    }
    emit(
        "Discussion (§4): response-time proxy — upstream round trips per client query (TRC1)",
        "discussion_latency",
        &table,
    );
    lab.emit_manifest();
    println!("Fewer tree walks (referrals) ⇒ fewer synchronous round trips ⇒");
    println!("lower client-visible latency, exactly as the paper argues for");
    println!("refresh and long-TTL.");
}
