/root/repo/target/release/deps/fig12-b6898efb7d84511e.d: crates/dns-bench/src/bin/fig12.rs

/root/repo/target/release/deps/fig12-b6898efb7d84511e: crates/dns-bench/src/bin/fig12.rs

crates/dns-bench/src/bin/fig12.rs:
