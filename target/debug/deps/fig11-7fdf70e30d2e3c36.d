/root/repo/target/debug/deps/fig11-7fdf70e30d2e3c36.d: crates/dns-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-7fdf70e30d2e3c36: crates/dns-bench/src/bin/fig11.rs

crates/dns-bench/src/bin/fig11.rs:
