/root/repo/target/debug/deps/dns_playground-43b01798ad0132fa.d: crates/dns-netd/src/bin/dns-playground.rs Cargo.toml

/root/repo/target/debug/deps/libdns_playground-43b01798ad0132fa.rmeta: crates/dns-netd/src/bin/dns-playground.rs Cargo.toml

crates/dns-netd/src/bin/dns-playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
