/root/repo/target/release/examples/resilience_tuning-64d6968e35cc9cc0.d: examples/resilience_tuning.rs

/root/repo/target/release/examples/resilience_tuning-64d6968e35cc9cc0: examples/resilience_tuning.rs

examples/resilience_tuning.rs:
