/root/repo/target/debug/deps/faults-2b3ac431a8d294fb.d: crates/dns-netd/tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-2b3ac431a8d294fb.rmeta: crates/dns-netd/tests/faults.rs Cargo.toml

crates/dns-netd/tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
