/root/repo/target/debug/deps/ablation-1084b884737e1f43.d: crates/dns-bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-1084b884737e1f43.rmeta: crates/dns-bench/src/bin/ablation.rs Cargo.toml

crates/dns-bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
