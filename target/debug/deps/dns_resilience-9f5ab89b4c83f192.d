/root/repo/target/debug/deps/dns_resilience-9f5ab89b4c83f192.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdns_resilience-9f5ab89b4c83f192.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
