/root/repo/target/debug/deps/dns_netd-50885a8452961d78.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs Cargo.toml

/root/repo/target/debug/deps/libdns_netd-50885a8452961d78.rmeta: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs Cargo.toml

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/fault.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
