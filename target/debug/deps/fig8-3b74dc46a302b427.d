/root/repo/target/debug/deps/fig8-3b74dc46a302b427.d: crates/dns-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-3b74dc46a302b427: crates/dns-bench/src/bin/fig8.rs

crates/dns-bench/src/bin/fig8.rs:
