/root/repo/target/debug/deps/dns_auth-0924623f1d87cda6.d: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

/root/repo/target/debug/deps/dns_auth-0924623f1d87cda6: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

crates/dns-auth/src/lib.rs:
crates/dns-auth/src/server.rs:
crates/dns-auth/src/store.rs:
