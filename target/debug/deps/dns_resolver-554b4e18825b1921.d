/root/repo/target/debug/deps/dns_resolver-554b4e18825b1921.d: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/debug/deps/libdns_resolver-554b4e18825b1921.rlib: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/debug/deps/libdns_resolver-554b4e18825b1921.rmeta: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs

crates/dns-resolver/src/lib.rs:
crates/dns-resolver/src/cache.rs:
crates/dns-resolver/src/config.rs:
crates/dns-resolver/src/dnssec.rs:
crates/dns-resolver/src/infra.rs:
crates/dns-resolver/src/metrics.rs:
crates/dns-resolver/src/policy.rs:
crates/dns-resolver/src/resolve.rs:
crates/dns-resolver/src/retry.rs:
crates/dns-resolver/src/upstream.rs:
