//! Paper §6 discussion: the *maximum damage attack*. Compares the greedy
//! budgeted-attack heuristic against the paper's root+TLD scenario at
//! equal zone budgets, on TRC1.
//!
//! Not a paper figure — an exploration of the discussion section.

use dns_bench::{emit, pct, Lab};
use dns_core::{SimDuration, SimTime};
use dns_sim::damage::{evaluate_plan, greedy_max_damage};
use dns_stats::Table;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    let spec = TraceSpec::TRC1;
    lab.trace(&spec);
    let universe = lab.universe().clone();
    let trace = lab.trace(&spec).clone();

    let start = SimTime::from_days(6);
    let duration = SimDuration::from_hours(6);
    let end = start + duration;

    let mut table = Table::new(vec![
        "Budget (zones)",
        "Greedy targets fail %",
        "Same-size TLD set fail %",
        "Top greedy pick",
    ]);
    table.numeric();

    // The root+TLD reference set, most-delegated TLDs first.
    let mut tlds: Vec<_> = universe
        .root_and_tld_apexes()
        .into_iter()
        .filter(|z| !z.is_root())
        .collect();
    tlds.sort_by_key(|z| std::cmp::Reverse(universe.children_of(z).count()));

    for budget in [1usize, 2, 5, 10, 20] {
        let plan = greedy_max_damage(&universe, &trace, start, end, budget);
        let greedy_fail = evaluate_plan(&universe, &trace, plan.zones(), start, duration);
        let tld_set: Vec<_> = tlds.iter().take(budget).cloned().collect();
        let tld_fail = evaluate_plan(&universe, &trace, tld_set, start, duration);
        table.row(vec![
            budget.to_string(),
            pct(greedy_fail),
            pct(tld_fail),
            plan.picks
                .first()
                .map(|(z, n)| format!("{z} ({n} queries)"))
                .unwrap_or_default(),
        ]);
    }

    emit(
        "Discussion (§6): greedy maximum-damage attack vs TLD attacks (6h, TRC1)",
        "discussion_maxdamage",
        &table,
    );
    println!("The greedy heuristic counts upcoming queries per subtree — the");
    println!("strategy the paper sketches. Traffic-aware targeting beats");
    println!("structure-aware targeting: the reference set picks the most");
    println!("*delegated* TLDs, while greedy picks the most *queried* subtrees");
    println!("(usually a mix of hot TLDs and very popular zones) — evidence for");
    println!("the paper's point that the worst-case attack depends on traffic");
    println!("patterns an attacker cannot fully know.");
}
