/root/repo/target/debug/deps/resolution-1afc9d6dfdc6c2dc.d: crates/dns-resolver/tests/resolution.rs

/root/repo/target/debug/deps/resolution-1afc9d6dfdc6c2dc: crates/dns-resolver/tests/resolution.rs

crates/dns-resolver/tests/resolution.rs:
