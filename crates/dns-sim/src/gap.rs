//! Figure-3 analysis: the time gap between an infrastructure record's
//! expiry and the next query sent to its zone.
//!
//! The gap distribution explains *why* the paper's schemes work: if most
//! gaps are short relative to the (extended) TTL, refreshing/renewing or
//! lengthening IRR TTLs keeps the records cached across the gaps.

use crate::{SimConfig, Simulation};
use dns_core::SimTime;
use dns_resolver::{GapSample, ResolverConfig};
use dns_stats::Cdf;
use dns_trace::{Trace, Universe};

/// The two CDFs of Figure 3.
#[derive(Debug, Clone)]
pub struct GapAnalysis {
    /// Gap durations in days (upper plot).
    pub absolute_days: Cdf,
    /// Gap durations as a fraction of the zone's IRR TTL (lower plot).
    pub fraction_of_ttl: Cdf,
    /// Number of gap events observed.
    pub samples: usize,
}

impl GapAnalysis {
    /// Builds both CDFs from raw samples.
    pub fn from_samples(samples: &[GapSample]) -> Self {
        let absolute: Vec<f64> = samples.iter().map(|s| s.gap.as_days_f64()).collect();
        let relative: Vec<f64> = samples
            .iter()
            .filter(|s| s.ttl.as_secs() > 0)
            .map(|s| s.gap.as_secs() as f64 / s.ttl.as_secs() as f64)
            .collect();
        GapAnalysis {
            absolute_days: Cdf::from_samples(absolute),
            fraction_of_ttl: Cdf::from_samples(relative),
            samples: samples.len(),
        }
    }
}

/// Runs a vanilla (current-DNS) replay of `trace` and returns the gap
/// analysis — the measurement behind Figure 3.
pub fn measure_gaps(universe: &Universe, trace: &Trace) -> GapAnalysis {
    let mut sim = Simulation::new(
        universe,
        trace.clone(),
        SimConfig::new(ResolverConfig::vanilla()),
    );
    sim.run_until(SimTime::from_days(trace.days));
    let samples = sim.take_gap_samples();
    GapAnalysis::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{SimDuration, Ttl};
    use dns_trace::{TraceSpec, UniverseSpec};

    #[test]
    fn gap_analysis_from_explicit_samples() {
        let samples = vec![
            GapSample {
                zone: "a.com".parse().unwrap(),
                gap: SimDuration::from_hours(12),
                ttl: Ttl::from_hours(12),
            },
            GapSample {
                zone: "b.com".parse().unwrap(),
                gap: SimDuration::from_days(2),
                ttl: Ttl::from_hours(12),
            },
        ];
        let g = GapAnalysis::from_samples(&samples);
        assert_eq!(g.samples, 2);
        assert_eq!(g.absolute_days.len(), 2);
        // 12h gap = 0.5 days; 2d gap = 2 days.
        assert_eq!(g.absolute_days.quantile(0.5), Some(0.5));
        // Fractions: 1.0 and 4.0.
        assert_eq!(g.fraction_of_ttl.quantile(1.0), Some(4.0));
    }

    #[test]
    fn measured_gaps_match_paper_shape() {
        let u = UniverseSpec::small().build(7);
        let t = TraceSpec::demo().scaled(0.3).generate(&u, 5);
        let g = measure_gaps(&u, &t);
        assert!(
            g.samples > 50,
            "expected many gap events, got {}",
            g.samples
        );
        // Figure 3: "in absolute time almost all gaps are less than 5
        // days" — trivially bounded by our 7-day trace, but the bulk
        // must be well under 5 days.
        assert!(g.absolute_days.fraction_at_or_below(5.0) > 0.95);
        // And the relative gaps vary over a wide range (short-TTL zones
        // produce gaps many times their TTL).
        assert!(g.fraction_of_ttl.max().unwrap() > 2.0);
    }
}
