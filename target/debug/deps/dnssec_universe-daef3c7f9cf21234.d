/root/repo/target/debug/deps/dnssec_universe-daef3c7f9cf21234.d: tests/dnssec_universe.rs Cargo.toml

/root/repo/target/debug/deps/libdnssec_universe-daef3c7f9cf21234.rmeta: tests/dnssec_universe.rs Cargo.toml

tests/dnssec_universe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
