/root/repo/target/debug/deps/table1-d40e540d736bfccb.d: crates/dns-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d40e540d736bfccb: crates/dns-bench/src/bin/table1.rs

crates/dns-bench/src/bin/table1.rs:
