/root/repo/target/debug/deps/dns_authd-909db80a326b1930.d: crates/dns-netd/src/bin/dns-authd.rs

/root/repo/target/debug/deps/dns_authd-909db80a326b1930: crates/dns-netd/src/bin/dns-authd.rs

crates/dns-netd/src/bin/dns-authd.rs:
