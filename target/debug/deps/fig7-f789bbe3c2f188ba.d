/root/repo/target/debug/deps/fig7-f789bbe3c2f188ba.d: crates/dns-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-f789bbe3c2f188ba: crates/dns-bench/src/bin/fig7.rs

crates/dns-bench/src/bin/fig7.rs:
