/root/repo/target/debug/deps/ablation-f2ab8a2f30517ed8.d: crates/dns-bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-f2ab8a2f30517ed8: crates/dns-bench/src/bin/ablation.rs

crates/dns-bench/src/bin/ablation.rs:
