//! Fixed-width binned histograms.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or the bounds are not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x >= self.hi {
            self.overflow += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi` (and non-finite samples).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// `(bin_low_edge, bin_high_edge, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let low = self.lo + width * i as f64;
            (low, low + width, c)
        })
    }

    /// Merges another histogram with identical bounds and bin count.
    ///
    /// # Panics
    ///
    /// Panics when the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram bounds differ");
        assert_eq!(self.hi, other.hi, "histogram bounds differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram([{}, {}), {} bins, {} samples)",
            self.lo,
            self.hi,
            self.bins.len(),
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.0);
        h.record(9.999);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi edge is exclusive
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn iter_produces_contiguous_edges() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(2.5);
        let triples: Vec<_> = h.iter().collect();
        assert_eq!(triples.len(), 4);
        for w in triples.windows(2) {
            assert!((w[0].1 - w[1].0).abs() < 1e-12);
        }
        assert_eq!(triples[2].2, 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.5);
        b.record(11.0);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "bad bounds")]
    fn inverted_bounds_rejected() {
        Histogram::new(5.0, 1.0, 3);
    }
}
