/root/repo/target/debug/deps/table2-1038dadd5dc5cba9.d: crates/dns-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-1038dadd5dc5cba9: crates/dns-bench/src/bin/table2.rs

crates/dns-bench/src/bin/table2.rs:
