/root/repo/target/debug/deps/fig7-0d86c1b6a53bb82e.d: crates/dns-bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-0d86c1b6a53bb82e.rmeta: crates/dns-bench/src/bin/fig7.rs Cargo.toml

crates/dns-bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
