//! Concurrency tests for the sharded cache backend: single-flight
//! coalescing under a thundering herd of identical queries, and
//! shard-count invariance (the shard count is a performance knob, never
//! a behavior knob).

use dns_auth::AuthServer;
use dns_core::{
    Delegation, Message, Name, Question, RData, Record, RecordType, SimTime, Ttl, ZoneBuilder,
};
use dns_resolver::{
    CacheBackend, CachingServer, Outcome, ResolverConfig, RootHints, ShardedCache, Upstream,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn ip(a: u8, b: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, a, b)
}

/// A miniature authoritative internet: root → edu → ucla.edu, plus a com
/// branch, addressable by IP.
struct MiniNet {
    servers: HashMap<Ipv4Addr, AuthServer>,
}

impl Upstream for MiniNet {
    fn query(&mut self, server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
        self.servers.get(&server).map(|s| s.handle_query(query))
    }
}

fn build_net() -> (MiniNet, RootHints) {
    let mut servers = HashMap::new();

    let root_zone = ZoneBuilder::new(Name::root())
        .ns(name("a.root-servers.net"), ip(0, 1), Ttl::from_days(7))
        .delegate(Delegation {
            child: name("edu"),
            ns_names: vec![name("ns.edu")],
            ns_ttl: Ttl::from_days(2),
            glue: vec![Record::new(
                name("ns.edu"),
                Ttl::from_days(2),
                RData::A(ip(1, 1)),
            )],
            ds: Vec::new(),
        })
        .delegate(Delegation {
            child: name("com"),
            ns_names: vec![name("ns.com")],
            ns_ttl: Ttl::from_days(2),
            glue: vec![Record::new(
                name("ns.com"),
                Ttl::from_days(2),
                RData::A(ip(4, 1)),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut root_srv = AuthServer::new(name("a.root-servers.net"), ip(0, 1));
    root_srv.add_zone(root_zone);
    servers.insert(root_srv.addr(), root_srv);

    let edu_zone = ZoneBuilder::new(name("edu"))
        .ns(name("ns.edu"), ip(1, 1), Ttl::from_days(2))
        .delegate(Delegation {
            child: name("ucla.edu"),
            ns_names: vec![name("ns1.ucla.edu")],
            ns_ttl: Ttl::from_hours(12),
            glue: vec![Record::new(
                name("ns1.ucla.edu"),
                Ttl::from_hours(12),
                RData::A(ip(2, 1)),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut edu_srv = AuthServer::new(name("ns.edu"), ip(1, 1));
    edu_srv.add_zone(edu_zone);
    servers.insert(edu_srv.addr(), edu_srv);

    let ucla_zone = ZoneBuilder::new(name("ucla.edu"))
        .ns(name("ns1.ucla.edu"), ip(2, 1), Ttl::from_hours(12))
        .a(name("www.ucla.edu"), ip(2, 80), Ttl::from_hours(4))
        .record(Record::new(
            name("web.ucla.edu"),
            Ttl::from_hours(4),
            RData::Cname(name("www.ucla.edu")),
        ))
        .build()
        .unwrap();
    let mut ucla_srv = AuthServer::new(name("ns1.ucla.edu"), ip(2, 1));
    ucla_srv.add_zone(ucla_zone);
    servers.insert(ucla_srv.addr(), ucla_srv);

    let com_zone = ZoneBuilder::new(name("com"))
        .ns(name("ns.com"), ip(4, 1), Ttl::from_days(2))
        .a(name("www.com"), ip(4, 80), Ttl::from_hours(4))
        .build()
        .unwrap();
    let mut com_srv = AuthServer::new(name("ns.com"), ip(4, 1));
    com_srv.add_zone(com_zone);
    servers.insert(com_srv.addr(), com_srv);

    let hints = RootHints::new(vec![(name("a.root-servers.net"), ip(0, 1))]);
    (MiniNet { servers }, hints)
}

/// Shares one [`MiniNet`] across worker threads, counting every upstream
/// query and sleeping `delay` before each one — the slow authoritative
/// path that widens the single-flight window.
#[derive(Clone)]
struct SlowCountingNet {
    net: Arc<Mutex<MiniNet>>,
    fetches: Arc<AtomicU64>,
    delay: Duration,
}

impl Upstream for SlowCountingNet {
    fn query(&mut self, server: Ipv4Addr, query: &Message, now: SimTime) -> Option<Message> {
        self.fetches.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        self.net.lock().unwrap().query(server, query, now)
    }
}

fn coalescing_config(seed: u64, shards: usize) -> ResolverConfig {
    ResolverConfig::vanilla()
        .to_builder()
        .seed(seed)
        .shards(shards)
        .coalesce(true)
        .build()
}

/// The acceptance test for single-flight: N workers fire the *same*
/// query simultaneously against one shared cache; the upstream must see
/// exactly one resolution's worth of fetches (the leader's walk), not N.
#[test]
fn herd_of_identical_queries_fetches_upstream_exactly_once() {
    // First, measure a solo run: how many upstream queries one cold
    // resolution of www.ucla.edu costs (root + edu + ucla walk).
    let (net, hints) = build_net();
    let solo_fetches = Arc::new(AtomicU64::new(0));
    let mut solo_up = SlowCountingNet {
        net: Arc::new(Mutex::new(net)),
        fetches: Arc::clone(&solo_fetches),
        delay: Duration::ZERO,
    };
    let mut solo =
        CachingServer::with_backend(coalescing_config(1, 4), hints.clone(), ShardedCache::new(4));
    let question = Question::new(name("www.ucla.edu"), RecordType::A);
    let solo_outcome = solo.resolve(&question, SimTime::from_mins(1), &mut solo_up);
    let per_resolution = solo_fetches.load(Ordering::SeqCst);
    assert!(per_resolution > 0, "cold resolution must hit the upstream");
    assert!(
        matches!(solo_outcome, Outcome::Answer { .. }),
        "fixture must resolve: {solo_outcome:?}"
    );

    // Now the herd: N workers, one shared backend, same question, a
    // barrier so they arrive together, and a slow upstream so the
    // followers arrive while the leader's walk is still in flight.
    const WORKERS: usize = 8;
    let (net, hints) = build_net();
    let net = Arc::new(Mutex::new(net));
    let fetches = Arc::new(AtomicU64::new(0));
    let backend = ShardedCache::new(4);
    let barrier = Arc::new(Barrier::new(WORKERS));

    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let upstream = SlowCountingNet {
                net: Arc::clone(&net),
                fetches: Arc::clone(&fetches),
                delay: Duration::from_millis(30),
            };
            let backend = backend.clone();
            let hints = hints.clone();
            let barrier = Arc::clone(&barrier);
            let question = question.clone();
            handles.push(scope.spawn(move || {
                let mut cs = CachingServer::with_backend(
                    coalescing_config(100 + w as u64, 4),
                    hints,
                    backend,
                );
                let mut upstream = upstream;
                barrier.wait();
                cs.resolve(&question, SimTime::from_mins(1), &mut upstream)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one fetch chain reached the upstream: the herd cost the
    // same number of upstream queries as a single solo resolution.
    assert_eq!(
        fetches.load(Ordering::SeqCst),
        per_resolution,
        "the herd must not multiply upstream fetches"
    );
    // Every worker got the same (correct) answer.
    for o in &outcomes {
        match o {
            Outcome::Answer { records, .. } => {
                assert!(records
                    .iter()
                    .any(|r| matches!(r.rdata(), RData::A(a) if *a == ip(2, 80))));
            }
            other => panic!("herd outcome deviated: {other:?}"),
        }
    }
    // The flight accounting adds up: every resolution either led or
    // shared a flight (a very late arrival may lead a fresh flight and
    // publish straight from cache, so `led` can exceed 1 — but shared +
    // led always covers the whole herd).
    assert!(backend.flights_led() >= 1);
    assert_eq!(
        backend.flights_led() + backend.flights_shared(),
        WORKERS as u64
    );
}

/// Resolving through 1 shard and through 8 shards must produce exactly
/// the same outcomes — sharding only changes lock granularity.
#[test]
fn shard_count_does_not_change_answers() {
    let questions = [
        Question::new(name("www.ucla.edu"), RecordType::A),
        Question::new(name("web.ucla.edu"), RecordType::A), // CNAME chain
        Question::new(name("www.com"), RecordType::A),      // other branch
        Question::new(name("nowhere.ucla.edu"), RecordType::A), // NXDOMAIN
        Question::new(name("www.ucla.edu"), RecordType::Mx), // NODATA
        Question::new(name("www.ucla.edu"), RecordType::A), // warm hit
    ];

    let run = |shards: usize| -> Vec<Outcome> {
        let (mut net, hints) = build_net();
        let mut cs = CachingServer::with_backend(
            coalescing_config(7, shards),
            hints,
            ShardedCache::new(shards),
        );
        questions
            .iter()
            .enumerate()
            .map(|(i, q)| cs.resolve(q, SimTime::from_mins(i as u64), &mut net))
            .collect()
    };

    let one = run(1);
    let eight = run(8);
    assert_eq!(one, eight, "shard count must be behavior-invariant");
    assert!(matches!(one[0], Outcome::Answer { .. }));
    assert!(matches!(one[3], Outcome::NxDomain { .. }));
    assert!(matches!(one[4], Outcome::NoData { .. }));
    assert!(
        matches!(
            one[5],
            Outcome::Answer {
                from_cache: true,
                ..
            }
        ),
        "repeat query must be served from the shared cache"
    );
}

/// The sharded backend and the default local backend resolve
/// identically: the backend API is a pure seam.
#[test]
fn sharded_backend_matches_local_backend() {
    let questions = [
        Question::new(name("www.ucla.edu"), RecordType::A),
        Question::new(name("web.ucla.edu"), RecordType::A),
        Question::new(name("nowhere.ucla.edu"), RecordType::A),
        Question::new(name("www.com"), RecordType::A),
    ];

    let (mut net, hints) = build_net();
    let mut local = CachingServer::new(ResolverConfig::vanilla(), hints.clone());
    let local_outcomes: Vec<Outcome> = questions
        .iter()
        .enumerate()
        .map(|(i, q)| local.resolve(q, SimTime::from_mins(i as u64), &mut net))
        .collect();

    let (mut net, hints) = build_net();
    let mut sharded =
        CachingServer::with_backend(coalescing_config(1, 8), hints, ShardedCache::new(8));
    let sharded_outcomes: Vec<Outcome> = questions
        .iter()
        .enumerate()
        .map(|(i, q)| sharded.resolve(q, SimTime::from_mins(i as u64), &mut net))
        .collect();

    assert_eq!(local_outcomes, sharded_outcomes);
    // The sharded backend's registry reflects the traffic it absorbed.
    let reg = sharded.backend().obs_registry().expect("sharded registry");
    let inserts: u64 = reg
        .render_compact()
        .iter()
        .find_map(|line| line.strip_prefix("shard_record_inserts=")?.parse().ok())
        .expect("insert counter");
    assert!(inserts > 0, "resolutions must populate the shared cache");
}
