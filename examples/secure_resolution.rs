//! DNSSEC structure under attack (paper §6): DS records are parent-side
//! infrastructure records, and the caching schemes keep *validation*
//! working through a root + TLD black-out, not just resolution.
//!
//! ```sh
//! cargo run --release --example secure_resolution
//! ```

use dns_resilience::prelude::*;

fn main() {
    // A fully signed synthetic internet.
    let mut spec = UniverseSpec::small_signed();
    spec.sld_count = 600;
    let universe = spec.build(77);
    let signed = universe
        .zones()
        .iter()
        .filter(|z| z.dnskey.is_some())
        .count();
    println!("built {} ({} signed zones)", universe, signed);

    let farm = ServerFarm::build(&universe, None);
    let hints = RootHints::new(universe.root_servers().to_vec());
    let mut net = SimNet::new(farm);

    let zone = universe
        .zones()
        .iter()
        .find(|z| z.dnskey.is_some() && !z.data_names.is_empty())
        .expect("signed zone exists");
    let host = &zone.data_names[0].0;

    for (label, config) in [
        ("vanilla", ResolverConfig::vanilla()),
        ("refresh", ResolverConfig::with_refresh()),
    ] {
        let mut cs = CachingServer::new(config, hints.clone());
        // Prime, then touch again at half the IRR TTL (refresh point).
        cs.resolve_a(host, SimTime::ZERO, &mut net);
        let half = SimDuration::from_secs(u64::from(zone.infra_ttl.as_secs()) / 2);
        cs.resolve_a(host, SimTime::ZERO + half, &mut net);

        // Permanent root + TLD black-out from t=0.
        net.set_attack(
            AttackScenario::zones(
                universe.root_and_tld_apexes(),
                SimTime::ZERO,
                SimDuration::from_days(365),
            )
            .compile(&universe),
        );

        // Probe just past the *original* TTL: only a refreshing resolver
        // still holds the infrastructure (and the DS riding on it).
        let probe =
            SimTime::ZERO + SimDuration::from_secs(u64::from(zone.infra_ttl.as_secs()) + 60);
        let resolution = cs.resolve_a(host, probe, &mut net);
        let validation = cs.validate_zone(&zone.apex, probe, &mut net);
        println!(
            "{label:<8} zone {} (IRR TTL {}): resolution {} — validation {}",
            zone.apex,
            zone.infra_ttl,
            if resolution.is_success() {
                "OK "
            } else {
                "FAIL"
            },
            validation
        );
        net.set_attack(dns_resilience::sim::CompiledAttack::none());
    }

    println!();
    println!("The DS set rides on the zone's infrastructure entry, so whatever");
    println!("keeps the NS records cached (refresh, renewal, long TTLs) keeps");
    println!("the chain of trust available too — paper §6's deployment note.");
}
