/root/repo/target/debug/deps/fig3-1de5379736c03346.d: crates/dns-bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-1de5379736c03346.rmeta: crates/dns-bench/src/bin/fig3.rs Cargo.toml

crates/dns-bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
