/root/repo/target/release/deps/discussion_maxdamage-5ed860802f7a1368.d: crates/dns-bench/src/bin/discussion_maxdamage.rs

/root/repo/target/release/deps/discussion_maxdamage-5ed860802f7a1368: crates/dns-bench/src/bin/discussion_maxdamage.rs

crates/dns-bench/src/bin/discussion_maxdamage.rs:
