//! DNSSEC-structure integration (paper §6): DS records travel with
//! referrals as parent-side infrastructure records, and the resilience
//! schemes keep validation material available through an attack.

use dns_auth::AuthServer;
use dns_core::{
    synthetic_key_digest, Delegation, Message, Name, RData, Record, SimTime, Ttl, ZoneBuilder,
};
use dns_resolver::{CachingServer, ResolverConfig, RootHints, SecureStatus, Upstream};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

fn ip(a: u8, b: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 1, a, b)
}

const UCLA_TAG: u16 = 257;
const UCLA_KEY: u32 = 0xACE0_0001;

struct MiniNet {
    servers: HashMap<Ipv4Addr, AuthServer>,
    dead: HashSet<Ipv4Addr>,
}

impl Upstream for MiniNet {
    fn query(&mut self, server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
        if self.dead.contains(&server) {
            return None;
        }
        self.servers.get(&server).map(|s| s.handle_query(query))
    }
}

/// root → edu → ucla.edu, with ucla.edu signed: edu's delegation carries
/// the DS, ucla serves the matching DNSKEY. `mit.edu` stays unsigned, and
/// `bogus.edu` has a DS that matches no key.
fn build_net() -> (MiniNet, RootHints) {
    let mut servers = HashMap::new();

    let root_zone = ZoneBuilder::new(Name::root())
        .ns(name("a.root-servers.net"), ip(0, 1), Ttl::from_days(7))
        .delegate(Delegation::unsigned(
            name("edu"),
            vec![name("ns.edu")],
            Ttl::from_days(2),
            vec![Record::new(
                name("ns.edu"),
                Ttl::from_days(2),
                RData::A(ip(1, 1)),
            )],
        ))
        .build()
        .unwrap();
    let mut root_srv = AuthServer::new(name("a.root-servers.net"), ip(0, 1));
    root_srv.add_zone(root_zone);
    servers.insert(ip(0, 1), root_srv);

    let ds = Record::new(
        name("ucla.edu"),
        Ttl::from_hours(12),
        RData::Ds {
            key_tag: UCLA_TAG,
            digest: synthetic_key_digest(UCLA_KEY),
        },
    );
    let edu_zone = ZoneBuilder::new(name("edu"))
        .ns(name("ns.edu"), ip(1, 1), Ttl::from_days(2))
        .delegate(Delegation {
            child: name("ucla.edu"),
            ns_names: vec![name("ns1.ucla.edu")],
            ns_ttl: Ttl::from_hours(12),
            glue: vec![Record::new(
                name("ns1.ucla.edu"),
                Ttl::from_hours(12),
                RData::A(ip(2, 1)),
            )],
            ds: vec![ds],
        })
        .delegate(Delegation::unsigned(
            name("mit.edu"),
            vec![name("ns1.mit.edu")],
            Ttl::from_hours(12),
            vec![Record::new(
                name("ns1.mit.edu"),
                Ttl::from_hours(12),
                RData::A(ip(3, 1)),
            )],
        ))
        .delegate(Delegation {
            child: name("bogus.edu"),
            ns_names: vec![name("ns1.bogus.edu")],
            ns_ttl: Ttl::from_hours(12),
            glue: vec![Record::new(
                name("ns1.bogus.edu"),
                Ttl::from_hours(12),
                RData::A(ip(4, 1)),
            )],
            // DS that no served key matches.
            ds: vec![Record::new(
                name("bogus.edu"),
                Ttl::from_hours(12),
                RData::Ds {
                    key_tag: 9,
                    digest: 0xBAD0_BAD0,
                },
            )],
        })
        .build()
        .unwrap();
    let mut edu_srv = AuthServer::new(name("ns.edu"), ip(1, 1));
    edu_srv.add_zone(edu_zone);
    servers.insert(ip(1, 1), edu_srv);

    let ucla_zone = ZoneBuilder::new(name("ucla.edu"))
        .ns(name("ns1.ucla.edu"), ip(2, 1), Ttl::from_hours(12))
        .dnskey(UCLA_TAG, UCLA_KEY)
        .a(name("www.ucla.edu"), ip(2, 80), Ttl::from_hours(4))
        .build()
        .unwrap();
    let mut ucla_srv = AuthServer::new(name("ns1.ucla.edu"), ip(2, 1));
    ucla_srv.add_zone(ucla_zone);
    servers.insert(ip(2, 1), ucla_srv);

    let mit_zone = ZoneBuilder::new(name("mit.edu"))
        .ns(name("ns1.mit.edu"), ip(3, 1), Ttl::from_hours(12))
        .a(name("www.mit.edu"), ip(3, 80), Ttl::from_hours(4))
        .build()
        .unwrap();
    let mut mit_srv = AuthServer::new(name("ns1.mit.edu"), ip(3, 1));
    mit_srv.add_zone(mit_zone);
    servers.insert(ip(3, 1), mit_srv);

    let bogus_zone = ZoneBuilder::new(name("bogus.edu"))
        .ns(name("ns1.bogus.edu"), ip(4, 1), Ttl::from_hours(12))
        .dnskey(9, 0x1234_5678) // digest won't match the published DS
        .a(name("www.bogus.edu"), ip(4, 80), Ttl::from_hours(4))
        .build()
        .unwrap();
    let mut bogus_srv = AuthServer::new(name("ns1.bogus.edu"), ip(4, 1));
    bogus_srv.add_zone(bogus_zone);
    servers.insert(ip(4, 1), bogus_srv);

    (
        MiniNet {
            servers,
            dead: HashSet::new(),
        },
        RootHints::new(vec![(name("a.root-servers.net"), ip(0, 1))]),
    )
}

#[test]
fn signed_delegation_validates_secure() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints);
    // Prime: the referral through edu installs ucla's NS + DS.
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    let entry = cs.infra().get(&name("ucla.edu")).unwrap();
    assert_eq!(entry.ds, vec![(UCLA_TAG, synthetic_key_digest(UCLA_KEY))]);
    assert_eq!(
        cs.validate_zone(&name("ucla.edu"), SimTime::from_mins(1), &mut net),
        SecureStatus::Secure
    );
}

#[test]
fn unsigned_delegation_is_insecure() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints);
    cs.resolve_a(&name("www.mit.edu"), SimTime::ZERO, &mut net);
    assert!(cs.infra().get(&name("mit.edu")).unwrap().ds.is_empty());
    assert_eq!(
        cs.validate_zone(&name("mit.edu"), SimTime::from_mins(1), &mut net),
        SecureStatus::Insecure
    );
}

#[test]
fn mismatched_key_is_bogus() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints);
    cs.resolve_a(&name("www.bogus.edu"), SimTime::ZERO, &mut net);
    assert_eq!(
        cs.validate_zone(&name("bogus.edu"), SimTime::from_mins(1), &mut net),
        SecureStatus::Bogus
    );
}

#[test]
fn refresh_keeps_validation_material_through_attack() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::with_refresh(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    // Touch the zone again at 8h: refresh extends the whole entry —
    // including the DS material riding on it — to 20h.
    cs.resolve_a(&name("www.ucla.edu"), SimTime::from_hours(8), &mut net);

    // Black out root and edu (the only DS sources).
    net.dead.insert(ip(0, 1));
    net.dead.insert(ip(1, 1));

    // At 13h a vanilla resolver would have lost the 12h-TTL entry; here
    // both resolution *and validation* still work.
    assert_eq!(
        cs.validate_zone(&name("ucla.edu"), SimTime::from_hours(13), &mut net),
        SecureStatus::Secure
    );
}

#[test]
fn attack_on_child_makes_validation_indeterminate() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    net.dead.insert(ip(2, 1)); // ucla's only server
                               // DS is cached but the DNSKEY cannot be fetched.
    assert_eq!(
        cs.validate_zone(&name("ucla.edu"), SimTime::from_mins(5), &mut net),
        SecureStatus::Indeterminate
    );
}

#[test]
fn ds_expires_with_the_infrastructure_entry() {
    let (mut net, hints) = build_net();
    let mut cs = CachingServer::new(ResolverConfig::vanilla(), hints);
    cs.resolve_a(&name("www.ucla.edu"), SimTime::ZERO, &mut net);
    // After the 12h entry expires (no refresh in vanilla), validation has
    // no DS to work from.
    assert_eq!(
        cs.validate_zone(&name("ucla.edu"), SimTime::from_hours(13), &mut net),
        SecureStatus::Insecure
    );
}
