/root/repo/target/release/deps/dns_auth-0ddeb536cea8c912.d: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

/root/repo/target/release/deps/libdns_auth-0ddeb536cea8c912.rlib: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

/root/repo/target/release/deps/libdns_auth-0ddeb536cea8c912.rmeta: crates/dns-auth/src/lib.rs crates/dns-auth/src/server.rs crates/dns-auth/src/store.rs

crates/dns-auth/src/lib.rs:
crates/dns-auth/src/server.rs:
crates/dns-auth/src/store.rs:
