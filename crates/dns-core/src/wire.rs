//! RFC 1035 wire format: encoding and decoding with name compression.
//!
//! The codec is complete for the record types in [`RecordType`]: messages
//! round-trip exactly, names are compressed with standard backward pointers
//! (§4.1.4) and decoding is hardened against pointer loops and truncated
//! buffers.
//!
//! ```rust
//! # fn main() -> Result<(), dns_core::DnsError> {
//! use dns_core::{wire, Message, Question, RecordType};
//!
//! let q = Message::query(42, Question::new("www.ucla.edu".parse()?, RecordType::A));
//! let bytes = wire::encode(&q)?;
//! let back = wire::decode(&bytes)?;
//! assert_eq!(q, back);
//! # Ok(())
//! # }
//! ```

use crate::{
    DnsError, Header, Message, Name, NameBuilder, Opcode, Question, RData, Rcode, Record,
    RecordClass, RecordType, Ttl, MAX_LABEL_LEN,
};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Maximum UDP payload we will produce (a classic 512-octet message would
/// truncate many referrals; like EDNS0 deployments we allow 4096).
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Maximum pointer hops while decoding one name; real names need far fewer
/// and a longer chain indicates a malicious or corrupt message.
const MAX_POINTER_HOPS: usize = 64;

/// The EDNS0 OPT pseudo-record type code (RFC 6891). OPT is negotiation
/// metadata, not zone data: the decoder strips it so plain-DNS handling of
/// the rest of the message continues (we answer without an OPT of our
/// own, i.e. classic DNS semantics).
pub const OPT_TYPE_CODE: u16 = 41;

/// Encodes a message to wire bytes.
///
/// # Errors
///
/// Returns [`DnsError::MessageTooLong`] if the encoded form exceeds
/// [`MAX_MESSAGE_LEN`].
pub fn encode(msg: &Message) -> Result<Vec<u8>, DnsError> {
    Ok(encode_with_ttl_offsets(msg)?.0)
}

/// Like [`encode`], but also reports the byte offset of each record's
/// 32-bit big-endian TTL field, in section order (answers, authorities,
/// additionals).
///
/// This is the handle a pre-serialized response cache needs: store the
/// compiled bytes once, then serve hot queries by patching the ID and
/// decrementing the TTLs in place at these offsets, skipping message
/// assembly and re-encoding entirely.
///
/// # Errors
///
/// Same contract as [`encode`].
pub fn encode_with_ttl_offsets(msg: &Message) -> Result<(Vec<u8>, Vec<u32>), DnsError> {
    let mut enc = Encoder::new();
    enc.header(msg)?;
    for q in &msg.questions {
        enc.question(q)?;
    }
    for r in &msg.answers {
        enc.record(r)?;
    }
    for r in &msg.authorities {
        enc.record(r)?;
    }
    for r in &msg.additionals {
        enc.record(r)?;
    }
    let out = enc.buf;
    if out.len() > MAX_MESSAGE_LEN {
        return Err(DnsError::MessageTooLong(out.len()));
    }
    Ok((out, enc.ttl_offsets))
}

/// Decodes a message from wire bytes.
///
/// # Errors
///
/// Returns a [`DnsError`] describing the first malformed element: truncated
/// data, invalid compression pointers, unknown type/class codes or RDATA
/// length mismatches.
pub fn decode(bytes: &[u8]) -> Result<Message, DnsError> {
    let mut dec = Decoder::new(bytes);
    let (header, counts) = dec.header()?;
    let mut msg = Message {
        header,
        ..Message::default()
    };
    for _ in 0..counts.0 {
        msg.questions.push(dec.question()?);
    }
    for _ in 0..counts.1 {
        if let Some(r) = dec.record("answer")? {
            msg.answers.push(r);
        }
    }
    for _ in 0..counts.2 {
        if let Some(r) = dec.record("authority")? {
            msg.authorities.push(r);
        }
    }
    for _ in 0..counts.3 {
        if let Some(r) = dec.record("additional")? {
            msg.additionals.push(r);
        }
    }
    Ok(msg)
}

/// Rewrites the first question's name in the encoded response `resp` with
/// the exact bytes the client sent in `query`, so replies echo the
/// client's original casing. [`Name`] lowercases labels on construction,
/// so a re-encoded question comes back lowercase without this — and
/// 0x20-randomizing clients reject case-mangled echoes.
///
/// Both messages must carry the question uncompressed at offset 12 with
/// the same label structure (ASCII-case-insensitively equal). On any
/// mismatch — compression pointers in the query, different shapes,
/// truncated buffers — `resp` is left untouched and `false` is returned.
pub fn patch_question_case(resp: &mut [u8], query: &[u8]) -> bool {
    const HDR: usize = 12;
    let mut pos = HDR;
    loop {
        let (q, r) = match (query.get(pos), resp.get(pos)) {
            (Some(&q), Some(&r)) => (q as usize, r as usize),
            _ => return false,
        };
        if q != r {
            return false;
        }
        if q == 0 {
            break; // both names end at the same root octet
        }
        if q > MAX_LABEL_LEN {
            return false; // compression pointer or junk length byte
        }
        let (start, end) = (pos + 1, pos + 1 + q);
        match (query.get(start..end), resp.get(start..end)) {
            (Some(ql), Some(rl)) if ql.eq_ignore_ascii_case(rl) => {}
            _ => return false,
        }
        pos = end;
    }
    // Same name modulo case: copy the client's exact spelling over the
    // response's (label lengths are identical, so offsets line up).
    resp[HDR..=pos].copy_from_slice(&query[HDR..=pos]);
    true
}

/// Big-endian append helpers over the plain `Vec<u8>` output buffer.
trait PutExt {
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_slice(&mut self, s: &[u8]);
}

impl PutExt for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

struct Encoder {
    buf: Vec<u8>,
    /// Name suffix view → offset of its first encoding. Keys are cheap
    /// `Name` clones (refcount bumps) hashed over their suffix bytes.
    compress: HashMap<Name, u16>,
    /// Byte offset of every record's TTL field, in section order (the
    /// [`encode_with_ttl_offsets`] contract).
    ttl_offsets: Vec<u32>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            buf: Vec::with_capacity(512),
            compress: HashMap::new(),
            ttl_offsets: Vec::new(),
        }
    }

    fn header(&mut self, msg: &Message) -> Result<(), DnsError> {
        let h = &msg.header;
        self.buf.put_u16(h.id);
        let mut flags: u16 = 0;
        if h.response {
            flags |= 0x8000;
        }
        flags |= (h.opcode.code() as u16) << 11;
        if h.authoritative {
            flags |= 0x0400;
        }
        if h.truncated {
            flags |= 0x0200;
        }
        if h.recursion_desired {
            flags |= 0x0100;
        }
        if h.recursion_available {
            flags |= 0x0080;
        }
        flags |= h.rcode.code() as u16;
        self.buf.put_u16(flags);
        let counts = [
            msg.questions.len(),
            msg.answers.len(),
            msg.authorities.len(),
            msg.additionals.len(),
        ];
        for c in counts {
            let c = u16::try_from(c).map_err(|_| DnsError::CountMismatch { section: "header" })?;
            self.buf.put_u16(c);
        }
        Ok(())
    }

    fn question(&mut self, q: &Question) -> Result<(), DnsError> {
        self.name(&q.name)?;
        self.buf.put_u16(q.rtype.code());
        self.buf.put_u16(q.class.code());
        Ok(())
    }

    fn record(&mut self, r: &Record) -> Result<(), DnsError> {
        self.name(r.name())?;
        self.buf.put_u16(r.rtype().code());
        self.buf.put_u16(r.class().code());
        self.ttl_offsets.push(self.buf.len() as u32);
        self.buf.put_u32(r.ttl().as_secs());
        // Reserve the RDLENGTH slot and patch it after writing RDATA.
        let len_at = self.buf.len();
        self.buf.put_u16(0);
        let data_start = self.buf.len();
        self.rdata(r.rdata())?;
        let rdlen = self.buf.len() - data_start;
        let rdlen = u16::try_from(rdlen).map_err(|_| DnsError::MessageTooLong(rdlen))?;
        self.buf[len_at..len_at + 2].copy_from_slice(&rdlen.to_be_bytes());
        Ok(())
    }

    fn rdata(&mut self, rd: &RData) -> Result<(), DnsError> {
        match rd {
            RData::A(a) => self.buf.put_slice(&a.octets()),
            RData::Aaaa(a) => self.buf.put_slice(&a.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => self.name(n)?,
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                self.name(mname)?;
                self.name(rname)?;
                for v in [serial, refresh, retry, expire, minimum] {
                    self.buf.put_u32(*v);
                }
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                self.buf.put_u16(*preference);
                self.name(exchange)?;
            }
            RData::Ds { key_tag, digest } => {
                self.buf.put_u16(*key_tag);
                self.buf.put_u32(*digest);
            }
            RData::Dnskey {
                key_tag,
                public_key,
            } => {
                self.buf.put_u16(*key_tag);
                self.buf.put_u32(*public_key);
            }
            RData::Txt(s) => {
                let bytes = s.as_bytes();
                if bytes.len() > 255 {
                    return Err(DnsError::BadRdata {
                        rtype: "TXT",
                        detail: "character-string longer than 255 octets",
                    });
                }
                self.buf.put_u8(bytes.len() as u8);
                self.buf.put_slice(bytes);
            }
        }
        Ok(())
    }

    /// Writes a (possibly compressed) domain name by walking its ancestor
    /// views — no intermediate label list or text keys are built.
    fn name(&mut self, name: &Name) -> Result<(), DnsError> {
        let mut current = name.clone();
        loop {
            if current.is_root() {
                self.buf.put_u8(0);
                return Ok(());
            }
            if let Some(&offset) = self.compress.get(&current) {
                self.buf.put_u16(0xC000 | offset);
                return Ok(());
            }
            // Pointers can only address the first 0x3FFF octets.
            if self.buf.len() <= 0x3FFF {
                self.compress.insert(current.clone(), self.buf.len() as u16);
            }
            let label = current.labels().next().expect("non-root name has a label");
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label);
            current = current.parent().expect("non-root name has a parent");
        }
    }
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DnsError> {
        if self.pos + n > self.bytes.len() {
            return Err(DnsError::UnexpectedEof { context });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, DnsError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, DnsError> {
        let s = self.take(2, context)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, DnsError> {
        let s = self.take(4, context)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    #[allow(clippy::type_complexity)]
    fn header(&mut self) -> Result<(Header, (u16, u16, u16, u16)), DnsError> {
        let id = self.u16("header id")?;
        let flags = self.u16("header flags")?;
        let opcode = Opcode::from_code(((flags >> 11) & 0xF) as u8)
            .ok_or(DnsError::UnknownRecordType((flags >> 11) & 0xF))?;
        let rcode = Rcode::from_code((flags & 0xF) as u8)
            .ok_or(DnsError::UnknownRecordType(flags & 0xF))?;
        let header = Header {
            id,
            response: flags & 0x8000 != 0,
            opcode,
            authoritative: flags & 0x0400 != 0,
            truncated: flags & 0x0200 != 0,
            recursion_desired: flags & 0x0100 != 0,
            recursion_available: flags & 0x0080 != 0,
            rcode,
        };
        let qd = self.u16("qdcount")?;
        let an = self.u16("ancount")?;
        let ns = self.u16("nscount")?;
        let ar = self.u16("arcount")?;
        Ok((header, (qd, an, ns, ar)))
    }

    fn question(&mut self) -> Result<Question, DnsError> {
        let name = self.name()?;
        let rtype = self.rtype()?;
        let class = self.class()?;
        Ok(Question { name, rtype, class })
    }

    fn rtype(&mut self) -> Result<RecordType, DnsError> {
        let code = self.u16("record type")?;
        RecordType::from_code(code).ok_or(DnsError::UnknownRecordType(code))
    }

    fn class(&mut self) -> Result<RecordClass, DnsError> {
        let code = self.u16("record class")?;
        RecordClass::from_code(code).ok_or(DnsError::UnknownClass(code))
    }

    fn record(&mut self, _section: &'static str) -> Result<Option<Record>, DnsError> {
        let name = self.name()?;
        let code = self.u16("record type")?;
        if code == OPT_TYPE_CODE {
            // EDNS0 OPT pseudo-record (RFC 6891): the class field carries
            // the sender's UDP payload size and the TTL field extended
            // flags, neither of which is zone data. Consume and drop it so
            // OPT-bearing queries are answered instead of rejected.
            let _udp_size = self.u16("opt class")?;
            let _ext_flags = self.u32("opt ttl")?;
            let rdlen = self.u16("opt rdlength")? as usize;
            self.take(rdlen, "opt rdata")?;
            return Ok(None);
        }
        let rtype = RecordType::from_code(code).ok_or(DnsError::UnknownRecordType(code))?;
        let class = self.class()?;
        let ttl = Ttl::from_secs(self.u32("ttl")?);
        let rdlen = self.u16("rdlength")? as usize;
        let rdata_end = self.pos + rdlen;
        if rdata_end > self.bytes.len() {
            return Err(DnsError::UnexpectedEof { context: "rdata" });
        }
        let rdata = self.rdata(rtype, rdlen)?;
        if self.pos != rdata_end {
            return Err(DnsError::BadRdata {
                rtype: "generic",
                detail: "rdata length does not match rdlength",
            });
        }
        Ok(Some(Record::with_class(name, class, ttl, rdata)))
    }

    fn rdata(&mut self, rtype: RecordType, rdlen: usize) -> Result<RData, DnsError> {
        match rtype {
            RecordType::A => {
                let o = self.take(4, "A rdata")?;
                Ok(RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3])))
            }
            RecordType::Aaaa => {
                let o = self.take(16, "AAAA rdata")?;
                let mut a = [0u8; 16];
                a.copy_from_slice(o);
                Ok(RData::Aaaa(Ipv6Addr::from(a)))
            }
            RecordType::Ns => Ok(RData::Ns(self.name()?)),
            RecordType::Cname => Ok(RData::Cname(self.name()?)),
            RecordType::Ptr => Ok(RData::Ptr(self.name()?)),
            RecordType::Soa => Ok(RData::Soa {
                mname: self.name()?,
                rname: self.name()?,
                serial: self.u32("soa serial")?,
                refresh: self.u32("soa refresh")?,
                retry: self.u32("soa retry")?,
                expire: self.u32("soa expire")?,
                minimum: self.u32("soa minimum")?,
            }),
            RecordType::Mx => Ok(RData::Mx {
                preference: self.u16("mx preference")?,
                exchange: self.name()?,
            }),
            RecordType::Ds => Ok(RData::Ds {
                key_tag: self.u16("ds key tag")?,
                digest: self.u32("ds digest")?,
            }),
            RecordType::Dnskey => Ok(RData::Dnskey {
                key_tag: self.u16("dnskey tag")?,
                public_key: self.u32("dnskey key")?,
            }),
            RecordType::Txt => {
                if rdlen == 0 {
                    return Err(DnsError::BadRdata {
                        rtype: "TXT",
                        detail: "empty rdata",
                    });
                }
                let len = self.u8("txt length")? as usize;
                if len != rdlen - 1 {
                    return Err(DnsError::BadRdata {
                        rtype: "TXT",
                        detail: "character-string length disagrees with rdlength",
                    });
                }
                let raw = self.take(len, "txt data")?;
                let s = std::str::from_utf8(raw).map_err(|_| DnsError::BadRdata {
                    rtype: "TXT",
                    detail: "text is not valid UTF-8",
                })?;
                Ok(RData::Txt(s.to_string()))
            }
        }
    }

    /// Reads a possibly compressed name starting at the cursor, assembling
    /// the compact buffer directly via [`NameBuilder`].
    fn name(&mut self) -> Result<Name, DnsError> {
        let mut builder = NameBuilder::new();
        let mut pos = self.pos;
        // Position to restore after the name (set at the first pointer).
        let mut resume: Option<usize> = None;
        let mut hops = 0usize;
        loop {
            let len = *self
                .bytes
                .get(pos)
                .ok_or(DnsError::UnexpectedEof { context: "name" })? as usize;
            match len {
                0 => {
                    pos += 1;
                    break;
                }
                1..=63 => {
                    let start = pos + 1;
                    let end = start + len;
                    let raw = self
                        .bytes
                        .get(start..end)
                        .ok_or(DnsError::UnexpectedEof { context: "label" })?;
                    builder.push(raw)?;
                    pos = end;
                }
                l if l & 0xC0 == 0xC0 => {
                    let second = *self
                        .bytes
                        .get(pos + 1)
                        .ok_or(DnsError::UnexpectedEof { context: "pointer" })?
                        as usize;
                    let target = ((len & 0x3F) << 8) | second;
                    // Pointers must move strictly backwards to terminate.
                    if target >= pos {
                        return Err(DnsError::BadPointer(pos));
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(DnsError::BadPointer(pos));
                    }
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    pos = target;
                }
                _ => return Err(DnsError::BadPointer(pos)),
            }
        }
        self.pos = resume.unwrap_or(pos);
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn referral() -> Message {
        let mut m = Message::response_to(&Message::query(
            99,
            Question::new(name("www.cs.ucla.edu"), RecordType::A),
        ));
        m.authorities.push(Record::new(
            name("ucla.edu"),
            Ttl::from_days(1),
            RData::Ns(name("ns1.ucla.edu")),
        ));
        m.authorities.push(Record::new(
            name("ucla.edu"),
            Ttl::from_days(1),
            RData::Ns(name("ns2.ucla.edu")),
        ));
        m.additionals.push(Record::new(
            name("ns1.ucla.edu"),
            Ttl::from_days(1),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        m.additionals.push(Record::new(
            name("ns2.ucla.edu"),
            Ttl::from_days(1),
            RData::A(Ipv4Addr::new(192, 0, 2, 2)),
        ));
        m
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(42, Question::new(name("www.ucla.edu"), RecordType::A));
        let bytes = encode(&q).unwrap();
        assert_eq!(decode(&bytes).unwrap(), q);
    }

    #[test]
    fn referral_roundtrip_and_compression_shrinks_output() {
        let m = referral();
        let bytes = encode(&m).unwrap();
        assert_eq!(decode(&bytes).unwrap(), m);
        // Uncompressed, the repeated `ucla.edu` suffixes would cost far
        // more; compression should keep this referral under 150 octets.
        assert!(bytes.len() < 150, "got {} octets", bytes.len());
    }

    #[test]
    fn every_rdata_type_roundtrips() {
        let rdatas = vec![
            RData::A(Ipv4Addr::new(10, 1, 2, 3)),
            RData::Aaaa(Ipv6Addr::LOCALHOST),
            RData::Ns(name("ns1.example.com")),
            RData::Cname(name("alias.example.com")),
            RData::Ptr(name("host.example.com")),
            RData::Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 2026070500,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
            RData::Mx {
                preference: 10,
                exchange: name("mx.example.com"),
            },
            RData::Txt("v=spf1 -all".to_string()),
            RData::Ds {
                key_tag: 12345,
                digest: 0xDEAD_BEEF,
            },
            RData::Dnskey {
                key_tag: 12345,
                public_key: 0xFEED_F00D,
            },
        ];
        for rd in rdatas {
            let mut m = Message::default();
            m.answers
                .push(Record::new(name("example.com"), Ttl::from_hours(1), rd));
            let bytes = encode(&m).unwrap();
            assert_eq!(decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn header_flags_roundtrip() {
        let mut m = Message::query(7, Question::new(name("a.b"), RecordType::Txt));
        m.header.response = true;
        m.header.authoritative = true;
        m.header.truncated = true;
        m.header.recursion_available = true;
        m.header.rcode = Rcode::Refused;
        let bytes = encode(&m).unwrap();
        assert_eq!(decode(&bytes).unwrap().header, m.header);
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let q = Message::query(1, Question::new(name("www.ucla.edu"), RecordType::A));
        let bytes = encode(&q).unwrap();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Header (12 bytes, qdcount=1) followed by a name that points at
        // itself.
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[0xC0, 12]); // pointer to its own offset
        bytes.extend_from_slice(&[0, 1, 0, 1]); // type A class IN
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            DnsError::BadPointer(_)
        ));
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let q = Message::query(1, Question::new(name("x.y"), RecordType::A));
        let mut bytes = encode(&q).unwrap();
        // Patch the question's type field (last 4 bytes are type+class).
        let at = bytes.len() - 4;
        bytes[at] = 0xFF;
        bytes[at + 1] = 0xFF;
        assert_eq!(
            decode(&bytes).unwrap_err(),
            DnsError::UnknownRecordType(0xFFFF)
        );
    }

    #[test]
    fn compressed_pointer_name_decodes() {
        // Manually build: header qd=0 an=2; first record owns
        // "ucla.edu", second's name is a pointer to it.
        let mut bytes = vec![0, 1, 0x80, 0, 0, 0, 0, 2, 0, 0, 0, 0];
        let name_at = bytes.len();
        bytes.extend_from_slice(b"\x04ucla\x03edu\x00");
        bytes.extend_from_slice(&[0, 1, 0, 1]); // A IN
        bytes.extend_from_slice(&[0, 0, 0x0E, 0x10]); // ttl 3600
        bytes.extend_from_slice(&[0, 4, 192, 0, 2, 1]);
        bytes.extend_from_slice(&[0xC0, name_at as u8]); // pointer
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        bytes.extend_from_slice(&[0, 0, 0x0E, 0x10]);
        bytes.extend_from_slice(&[0, 4, 192, 0, 2, 2]);
        let m = decode(&bytes).unwrap();
        assert_eq!(m.answers.len(), 2);
        assert_eq!(m.answers[0].name(), m.answers[1].name());
        assert_eq!(m.answers[1].name(), &name("ucla.edu"));
    }

    #[test]
    fn txt_too_long_rejected_on_encode() {
        let mut m = Message::default();
        m.answers.push(Record::new(
            name("t.example.com"),
            Ttl::from_secs(60),
            RData::Txt("x".repeat(300)),
        ));
        assert!(matches!(
            encode(&m).unwrap_err(),
            DnsError::BadRdata { rtype: "TXT", .. }
        ));
    }

    #[test]
    fn root_name_roundtrips() {
        let q = Message::query(3, Question::new(Name::root(), RecordType::Ns));
        let bytes = encode(&q).unwrap();
        assert_eq!(decode(&bytes).unwrap(), q);
    }

    /// Appends an EDNS0 OPT pseudo-record (root owner, UDP size 4096, no
    /// options) and bumps the wire arcount.
    fn append_opt(bytes: &mut Vec<u8>) {
        let ar = u16::from_be_bytes([bytes[10], bytes[11]]) + 1;
        bytes[10..12].copy_from_slice(&ar.to_be_bytes());
        bytes.push(0); // root owner name
        bytes.extend_from_slice(&OPT_TYPE_CODE.to_be_bytes());
        bytes.extend_from_slice(&4096u16.to_be_bytes()); // requestor UDP size
        bytes.extend_from_slice(&0u32.to_be_bytes()); // extended RCODE+flags
        bytes.extend_from_slice(&0u16.to_be_bytes()); // empty RDATA
    }

    #[test]
    fn opt_pseudo_record_is_stripped_on_decode() {
        let q = Message::query(5, Question::new(name("www.ucla.edu"), RecordType::A));
        let mut bytes = encode(&q).unwrap();
        append_opt(&mut bytes);
        let decoded = decode(&bytes).unwrap();
        // The OPT never surfaces as a record; the rest decodes as if the
        // query were plain DNS.
        assert_eq!(decoded, q);
        assert!(decoded.additionals.is_empty());
    }

    #[test]
    fn opt_with_rdata_options_is_skipped_whole() {
        let q = Message::query(6, Question::new(name("x.y"), RecordType::A));
        let mut bytes = encode(&q).unwrap();
        let ar = 1u16;
        bytes[10..12].copy_from_slice(&ar.to_be_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&OPT_TYPE_CODE.to_be_bytes());
        bytes.extend_from_slice(&1232u16.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        // One EDNS option: code 10 (COOKIE), 8 octets of payload.
        bytes.extend_from_slice(&12u16.to_be_bytes());
        bytes.extend_from_slice(&10u16.to_be_bytes());
        bytes.extend_from_slice(&8u16.to_be_bytes());
        bytes.extend_from_slice(&[0xAB; 8]);
        assert_eq!(decode(&bytes).unwrap(), q);
        // A truncated OPT RDATA still errors instead of panicking.
        bytes.truncate(bytes.len() - 4);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn ttl_offsets_address_every_record_ttl_in_section_order() {
        let m = referral();
        let (bytes, offsets) = encode_with_ttl_offsets(&m).unwrap();
        let ttls: Vec<u32> = m
            .answers
            .iter()
            .chain(&m.authorities)
            .chain(&m.additionals)
            .map(|r| r.ttl().as_secs())
            .collect();
        assert_eq!(offsets.len(), ttls.len());
        for (off, expect) in offsets.iter().zip(&ttls) {
            let at = *off as usize;
            let got = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap());
            assert_eq!(got, *expect, "ttl field at offset {at}");
        }
        // Patching at the reported offsets survives a decode round-trip.
        let mut patched = bytes.clone();
        for off in &offsets {
            let at = *off as usize;
            patched[at..at + 4].copy_from_slice(&7u32.to_be_bytes());
        }
        let back = decode(&patched).unwrap();
        for r in back
            .answers
            .iter()
            .chain(&back.authorities)
            .chain(&back.additionals)
        {
            assert_eq!(r.ttl().as_secs(), 7);
        }
    }

    #[test]
    fn question_case_patch_restores_client_spelling() {
        // The client sends a 0x20-randomized spelling; decode lowercases.
        let query_bytes = {
            let q = Message::query(77, Question::new(name("www.ucla.edu"), RecordType::A));
            let mut b = encode(&q).unwrap();
            b[13..16].copy_from_slice(b"wWw");
            b[17..21].copy_from_slice(b"UCLA");
            b
        };
        let decoded = decode(&query_bytes).unwrap();
        let mut resp_bytes = encode(&Message::response_to(&decoded)).unwrap();
        assert!(patch_question_case(&mut resp_bytes, &query_bytes));
        assert_eq!(&resp_bytes[12..26], &query_bytes[12..26]);
        // The patched bytes still decode to the same (case-folded) name.
        let back = decode(&resp_bytes).unwrap();
        assert_eq!(back.question().unwrap().name, name("www.ucla.edu"));
    }

    #[test]
    fn question_case_patch_refuses_mismatched_shapes() {
        let q = Message::query(1, Question::new(name("www.ucla.edu"), RecordType::A));
        let qb = encode(&q).unwrap();
        let other = Message::query(1, Question::new(name("web.ucla.edu"), RecordType::A));
        let mut rb = encode(&other).unwrap();
        let before = rb.clone();
        assert!(!patch_question_case(&mut rb, &qb), "different labels");
        assert_eq!(rb, before, "refused patch must not touch the buffer");

        let shorter = Message::query(1, Question::new(name("ucla.edu"), RecordType::A));
        let mut rb = encode(&shorter).unwrap();
        assert!(!patch_question_case(&mut rb, &qb), "different label count");

        // A query whose question name starts with a compression pointer
        // (malformed for a first name, but seen in the wild) is refused.
        let mut ptr_query = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        ptr_query.extend_from_slice(&[0xC0, 12, 0, 1, 0, 1]);
        let mut rb = encode(&q).unwrap();
        assert!(!patch_question_case(&mut rb, &ptr_query));

        // Truncated buffers are refused rather than panicking.
        let mut rb = encode(&q).unwrap();
        assert!(!patch_question_case(&mut rb, &qb[..13]));
    }
}
