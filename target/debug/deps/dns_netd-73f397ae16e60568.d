/root/repo/target/debug/deps/dns_netd-73f397ae16e60568.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/dns_netd-73f397ae16e60568: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/fault.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/fault.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
