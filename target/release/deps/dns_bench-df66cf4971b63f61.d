/root/repo/target/release/deps/dns_bench-df66cf4971b63f61.d: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/release/deps/libdns_bench-df66cf4971b63f61.rlib: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/release/deps/libdns_bench-df66cf4971b63f61.rmeta: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

crates/dns-bench/src/lib.rs:
crates/dns-bench/src/experiments/mod.rs:
