/root/repo/target/release/deps/fig7-5e354d523153f8a2.d: crates/dns-bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-5e354d523153f8a2: crates/dns-bench/src/bin/fig7.rs

crates/dns-bench/src/bin/fig7.rs:
