//! Property tests pinning the streaming replay contract: a streamed
//! trace, a stream resumed from a mid-trace cursor, and the materialized
//! generator must produce byte-identical query sequences for the same
//! seed — across arbitrary workload shapes and cut points.

use dns_trace::{QueryEvent, Universe, UniverseSpec, UniverseTargets, WorkloadBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared universe: building it per-case would dominate the run, and
/// the generator's determinism is covered by its own tests.
fn universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| {
        UniverseSpec {
            tld_count: 10,
            sld_count: 300,
            ..UniverseSpec::small()
        }
        .build(7)
    })
}

fn workload(days: u64, clients: u32, total: u64, alpha: f64, amp: f64) -> WorkloadBuilder {
    WorkloadBuilder::new("PROP", days, clients, total)
        .zipf_alpha(alpha)
        .diurnal_amplitude(amp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Collecting the stream reproduces the materialized trace exactly.
    #[test]
    fn streamed_equals_materialized(
        seed in any::<u64>(),
        days in 1u64..=3,
        clients in 1u32..=40,
        total in 1u64..=4_000,
        alpha_pct in 60u32..=130,
        amp_pct in 0u32..=100,
    ) {
        let u = universe();
        let wb = workload(
            days,
            clients,
            total,
            f64::from(alpha_pct) / 100.0,
            f64::from(amp_pct) / 100.0,
        );
        let materialized = wb.generate(u, seed);
        let streamed: Vec<QueryEvent> =
            wb.stream(UniverseTargets::new(u), seed).collect();
        prop_assert_eq!(&materialized.queries, &streamed);
    }

    /// A cursor captured after `cut` events resumes the remainder
    /// byte-identically, wherever the cut lands (hour boundaries, empty
    /// hours, start, end).
    #[test]
    fn cursor_resume_is_byte_identical(
        seed in any::<u64>(),
        days in 1u64..=3,
        clients in 1u32..=40,
        total in 1u64..=4_000,
        cut_pct in 0u32..=100,
    ) {
        let u = universe();
        let wb = workload(days, clients, total, 1.05, 0.5);
        let targets = UniverseTargets::new(u);
        let full: Vec<QueryEvent> = wb.stream(targets.clone(), seed).collect();

        let cut = full.len() * cut_pct as usize / 100;
        let mut stream = wb.stream(targets.clone(), seed);
        for _ in 0..cut {
            stream.next();
        }
        let cursor = stream.cursor();
        prop_assert_eq!(cursor.emitted(), cut as u64);

        let resumed: Vec<QueryEvent> =
            wb.resume(targets, seed, &cursor).collect();
        prop_assert_eq!(&full[cut..], &resumed[..]);
    }
}
