//! End-to-end replay throughput, plus scheme ablations: how much the
//! refresh / renewal / long-TTL machinery costs per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dns_core::Ttl;
use dns_resolver::{RenewalPolicy, ResolverConfig};
use dns_sim::experiment::Scheme;
use dns_sim::{SimConfig, Simulation};
use dns_trace::{Trace, Universe, UniverseSpec, WorkloadBuilder};

fn setup() -> (Universe, Trace) {
    let universe = UniverseSpec::small().build(7);
    // One simulated day, 10k queries — a fast but representative replay.
    let trace = WorkloadBuilder::new("bench", 1, 50, 10_000).generate(&universe, 42);
    (universe, trace)
}

fn bench_replay(c: &mut Criterion) {
    let (universe, trace) = setup();
    let mut group = c.benchmark_group("simulation/replay_10k");
    group.sample_size(10);

    let schemes = [
        ("vanilla", Scheme::vanilla()),
        ("refresh", Scheme::refresh()),
        (
            "renewal_alfu3",
            Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),
        ),
        (
            "combined",
            Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)),
        ),
    ];
    for (label, scheme) in schemes {
        // Build the farm once per scheme (outside the measured loop).
        let farm = dns_sim::ServerFarm::build(&universe, scheme.long_ttl);
        group.bench_with_input(BenchmarkId::from_parameter(label), &scheme, |b, s| {
            b.iter_with_setup(
                || Simulation::with_farm(farm.clone(), &universe, trace.clone(), s.sim_config()),
                |mut sim| {
                    sim.run_to_end();
                    sim.metrics().queries_in
                },
            )
        });
    }
    group.finish();
}

fn bench_fork(c: &mut Criterion) {
    let (universe, trace) = setup();
    let mut sim = Simulation::new(
        &universe,
        trace,
        SimConfig::new(ResolverConfig::with_refresh()),
    );
    sim.run_to_end();
    let mut group = c.benchmark_group("simulation/fork_warm_state");
    group.sample_size(20);
    group.bench_function("fork", |b| b.iter(|| sim.fork()));
    group.finish();
}

criterion_group!(benches, bench_replay, bench_fork);
criterion_main!(benches);
