/root/repo/target/debug/deps/fig10-1048ee44f1b854b1.d: crates/dns-bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-1048ee44f1b854b1: crates/dns-bench/src/bin/fig10.rs

crates/dns-bench/src/bin/fig10.rs:
