/root/repo/target/debug/deps/dns_resolver-86ec0cdbe5fdf38b.d: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs Cargo.toml

/root/repo/target/debug/deps/libdns_resolver-86ec0cdbe5fdf38b.rmeta: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs Cargo.toml

crates/dns-resolver/src/lib.rs:
crates/dns-resolver/src/cache.rs:
crates/dns-resolver/src/config.rs:
crates/dns-resolver/src/dnssec.rs:
crates/dns-resolver/src/infra.rs:
crates/dns-resolver/src/metrics.rs:
crates/dns-resolver/src/policy.rs:
crates/dns-resolver/src/resolve.rs:
crates/dns-resolver/src/retry.rs:
crates/dns-resolver/src/upstream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
