/root/repo/target/debug/deps/table2-71d21c3ea1500406.d: crates/dns-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-71d21c3ea1500406.rmeta: crates/dns-bench/src/bin/table2.rs Cargo.toml

crates/dns-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
