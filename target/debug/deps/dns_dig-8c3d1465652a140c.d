/root/repo/target/debug/deps/dns_dig-8c3d1465652a140c.d: crates/dns-netd/src/bin/dns-dig.rs

/root/repo/target/debug/deps/dns_dig-8c3d1465652a140c: crates/dns-netd/src/bin/dns-dig.rs

crates/dns-netd/src/bin/dns-dig.rs:
