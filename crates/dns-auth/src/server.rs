//! Query processing for an authoritative server.

use crate::ZoneStore;
use dns_core::{Message, Name, RData, Rcode, Record, RecordType, Ttl, Zone};
use std::fmt;
use std::net::Ipv4Addr;

/// Maximum CNAME links chased inside one response.
const MAX_CNAME_CHAIN: usize = 8;

/// An authoritative name-server: an identity (name + address) plus the
/// zones it serves.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct AuthServer {
    name: Name,
    addr: Ipv4Addr,
    zones: ZoneStore,
}

impl AuthServer {
    /// Creates a server with no zones.
    pub fn new(name: Name, addr: Ipv4Addr) -> Self {
        AuthServer {
            name,
            addr,
            zones: ZoneStore::new(),
        }
    }

    /// The server's host name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The server's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Adds a zone this server is authoritative for. Accepts both owned
    /// zones and shared `Arc<Zone>` handles (see [`ZoneStore::insert`]).
    pub fn add_zone(&mut self, zone: impl Into<std::sync::Arc<Zone>>) {
        self.zones.insert(zone);
    }

    /// The served zones.
    pub fn zones(&self) -> &ZoneStore {
        &self.zones
    }

    /// Mutable access to the served zones (used by the simulator to apply
    /// long-TTL overrides).
    pub fn zones_mut(&mut self) -> &mut ZoneStore {
        &mut self.zones
    }

    /// Answers one query, producing a complete response message.
    ///
    /// The logic mirrors RFC 1034 §4.3.2: find the deepest served zone
    /// enclosing the query name; refuse if none; refer at delegation cuts;
    /// otherwise answer authoritatively (including NXDOMAIN/NODATA with the
    /// SOA, and CNAME chasing within the zone).
    pub fn handle_query(&self, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        let Some(question) = query.question().cloned() else {
            resp.header.rcode = Rcode::FormErr;
            return resp;
        };
        let Some(zone) = self.zones.find(&question.name) else {
            resp.header.rcode = Rcode::Refused;
            return resp;
        };

        // Delegation cut between the apex and the query name → referral.
        if let Some(delegation) = zone.delegation_for(&question.name) {
            // DS queries are answered from the *parent* side of the cut
            // (RFC 4035 §2.4): the DS set is authoritative parent data.
            if question.rtype == RecordType::Ds && question.name == delegation.child {
                resp.header.authoritative = true;
                resp.answers.extend(delegation.ds.iter().cloned());
                return resp;
            }
            // If we also serve the child zone, answer from it directly
            // (same-server parent/child, common for TLD operators).
            if let Some(child_zone) = self.zones.get(&delegation.child) {
                if child_zone.delegation_for(&question.name).is_none() {
                    return self.authoritative_answer(child_zone, query);
                }
            }
            resp.header.authoritative = false;
            for rec in delegation.ns_rrset().to_records() {
                resp.authorities.push(rec);
            }
            // Signed delegations carry the DS set alongside the NS set —
            // the DNSSEC infrastructure records of paper §6.
            for ds in &delegation.ds {
                resp.authorities.push(ds.clone());
            }
            for glue in &delegation.glue {
                resp.additionals.push(glue.clone());
            }
            return resp;
        }

        self.authoritative_answer(zone, query)
    }

    fn authoritative_answer(&self, zone: &Zone, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        resp.header.authoritative = true;
        let question = query.question().expect("checked by caller").clone();

        let mut qname = question.name.clone();
        for _ in 0..MAX_CNAME_CHAIN {
            if let Some(set) = zone.lookup(&qname, question.rtype) {
                resp.answers.extend(set.to_records());
                break;
            }
            // Chase an in-zone CNAME when the queried type is not CNAME.
            if question.rtype != RecordType::Cname {
                if let Some(cname) = zone.lookup(&qname, RecordType::Cname) {
                    resp.answers.extend(cname.to_records());
                    if let Some(RData::Cname(target)) = cname.rdatas().first() {
                        if target.is_subdomain_of(zone.apex()) {
                            qname = target.clone();
                            continue;
                        }
                    }
                }
            }
            break;
        }

        if resp.answers.is_empty() {
            // Negative answer: NXDOMAIN if nothing exists at the name,
            // NODATA otherwise; both carry the SOA for negative caching.
            if !zone.name_exists(&question.name) {
                resp.header.rcode = Rcode::NxDomain;
            }
            if let Some(soa) = zone.lookup(zone.apex(), RecordType::Soa) {
                resp.authorities.extend(soa.to_records());
            } else {
                // Synthesise a minimal SOA so negative caching still works
                // for generated zones that omit one.
                resp.authorities.push(Record::new(
                    zone.apex().clone(),
                    Ttl::from_mins(5),
                    RData::Soa {
                        mname: zone.ns_names().first().cloned().unwrap_or_else(Name::root),
                        rname: zone.apex().clone(),
                        serial: 1,
                        refresh: 7200,
                        retry: 3600,
                        expire: 1_209_600,
                        minimum: 300,
                    },
                ));
            }
            return resp;
        }

        // Positive answer: attach the zone's own infrastructure records.
        // These authority/additional copies are exactly what the paper's
        // TTL-refresh scheme consumes at the caching server.
        if let Some(ns_set) = zone.lookup(zone.apex(), RecordType::Ns) {
            resp.authorities.extend(ns_set.to_records());
            for ns_name in zone.ns_names() {
                if let Some(a_set) = zone.lookup(ns_name, RecordType::A) {
                    resp.additionals.extend(a_set.to_records());
                }
            }
        }
        resp
    }
}

impl fmt::Display for AuthServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) serving {} zones",
            self.name,
            self.addr,
            self.zones.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Delegation, Question, ResponseKind, ZoneBuilder};

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    fn ucla_zone() -> Zone {
        ZoneBuilder::new(name("ucla.edu"))
            .ns(name("ns1.ucla.edu"), ip(1), Ttl::from_days(1))
            .ns(name("ns2.ucla.edu"), ip(2), Ttl::from_days(1))
            .a(name("www.ucla.edu"), ip(80), Ttl::from_hours(4))
            .record(Record::new(
                name("web.ucla.edu"),
                Ttl::from_hours(4),
                RData::Cname(name("www.ucla.edu")),
            ))
            .record(Record::new(
                name("ext.ucla.edu"),
                Ttl::from_hours(4),
                RData::Cname(name("cdn.example.net")),
            ))
            .delegate(Delegation {
                child: name("cs.ucla.edu"),
                ns_names: vec![name("ns.cs.ucla.edu")],
                ns_ttl: Ttl::from_hours(12),
                glue: vec![Record::new(
                    name("ns.cs.ucla.edu"),
                    Ttl::from_hours(12),
                    RData::A(ip(53)),
                )],
                ds: Vec::new(),
            })
            .build()
            .unwrap()
    }

    fn server() -> AuthServer {
        let mut s = AuthServer::new(name("ns1.ucla.edu"), ip(1));
        s.add_zone(ucla_zone());
        s
    }

    fn ask(server: &AuthServer, qname: &str, rtype: RecordType) -> Message {
        server.handle_query(&Message::query(9, Question::new(name(qname), rtype)))
    }

    #[test]
    fn authoritative_answer_includes_infrastructure_records() {
        let resp = ask(&server(), "www.ucla.edu", RecordType::A);
        assert_eq!(resp.kind(), ResponseKind::Answer);
        assert!(resp.header.authoritative);
        assert_eq!(resp.answers.len(), 1);
        // Authority carries the apex NS set…
        let ns: Vec<_> = resp
            .authorities
            .iter()
            .filter(|r| r.rtype() == RecordType::Ns)
            .collect();
        assert_eq!(ns.len(), 2);
        // …and additional carries glue for both servers.
        assert_eq!(resp.additionals.len(), 2);
    }

    #[test]
    fn referral_at_delegation_cut() {
        let resp = ask(&server(), "host.cs.ucla.edu", RecordType::A);
        assert_eq!(resp.kind(), ResponseKind::Referral);
        assert!(!resp.header.authoritative);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities[0].name(), &name("cs.ucla.edu"));
        assert_eq!(resp.additionals[0].name(), &name("ns.cs.ucla.edu"));
    }

    #[test]
    fn same_server_parent_and_child_answers_from_child() {
        let mut s = server();
        let child = ZoneBuilder::new(name("cs.ucla.edu"))
            .ns(name("ns.cs.ucla.edu"), ip(53), Ttl::from_hours(12))
            .a(name("host.cs.ucla.edu"), ip(99), Ttl::from_hours(1))
            .build()
            .unwrap();
        s.add_zone(child);
        let resp = ask(&s, "host.cs.ucla.edu", RecordType::A);
        assert_eq!(resp.kind(), ResponseKind::Answer);
        assert!(resp.header.authoritative);
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let resp = ask(&server(), "nope.ucla.edu", RecordType::A);
        assert_eq!(resp.kind(), ResponseKind::NxDomain);
        assert!(resp
            .authorities
            .iter()
            .any(|r| r.rtype() == RecordType::Soa));
    }

    #[test]
    fn nodata_for_existing_name_wrong_type() {
        let resp = ask(&server(), "www.ucla.edu", RecordType::Mx);
        assert_eq!(resp.kind(), ResponseKind::NoData);
        assert_eq!(resp.header.rcode, Rcode::NoError);
    }

    #[test]
    fn refused_outside_authority() {
        let resp = ask(&server(), "www.mit.edu", RecordType::A);
        assert_eq!(resp.header.rcode, Rcode::Refused);
    }

    #[test]
    fn cname_chased_within_zone() {
        let resp = ask(&server(), "web.ucla.edu", RecordType::A);
        assert_eq!(resp.kind(), ResponseKind::Answer);
        // CNAME plus the target's A record.
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(resp.answers[0].rtype(), RecordType::Cname);
        assert_eq!(resp.answers[1].rtype(), RecordType::A);
    }

    #[test]
    fn cname_to_external_target_returns_alias_only() {
        let resp = ask(&server(), "ext.ucla.edu", RecordType::A);
        assert_eq!(resp.kind(), ResponseKind::Answer);
        assert_eq!(resp.answers.len(), 1);
        assert_eq!(resp.answers[0].rtype(), RecordType::Cname);
    }

    #[test]
    fn malformed_query_gets_formerr() {
        let empty = Message::default();
        let resp = server().handle_query(&empty);
        assert_eq!(resp.header.rcode, Rcode::FormErr);
    }

    #[test]
    fn query_for_apex_ns_is_answered_authoritatively() {
        let resp = ask(&server(), "ucla.edu", RecordType::Ns);
        assert_eq!(resp.kind(), ResponseKind::Answer);
        assert!(resp.header.authoritative);
        assert_eq!(resp.answers.len(), 2);
    }
}
