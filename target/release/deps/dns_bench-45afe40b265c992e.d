/root/repo/target/release/deps/dns_bench-45afe40b265c992e.d: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/release/deps/libdns_bench-45afe40b265c992e.rlib: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

/root/repo/target/release/deps/libdns_bench-45afe40b265c992e.rmeta: crates/dns-bench/src/lib.rs crates/dns-bench/src/experiments/mod.rs

crates/dns-bench/src/lib.rs:
crates/dns-bench/src/experiments/mod.rs:
