/root/repo/target/debug/deps/dns_resilience-68aabb3ba5b546fc.d: src/lib.rs

/root/repo/target/debug/deps/dns_resilience-68aabb3ba5b546fc: src/lib.rs

src/lib.rs:
