//! [`Upstream`] over real UDP sockets.

use dns_core::{wire, Message, SimTime};
use dns_resolver::Upstream;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::Duration;

/// Routes the resolver's upstream queries over real UDP.
///
/// The resolver addresses authoritative servers by IPv4 address; this
/// upstream completes them with a port (53 in production, an override for
/// loopback playgrounds where every daemon shares 127.0.0.1).
pub struct UdpUpstream {
    socket: UdpSocket,
    timeout: Duration,
    /// `(address → socket address)` mapping; loopback setups map the
    /// universe's synthetic addresses to local daemons on different ports.
    route: Box<dyn Fn(Ipv4Addr) -> SocketAddr + Send>,
}

impl std::fmt::Debug for UdpUpstream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpUpstream")
            .field("socket", &self.socket)
            .field("timeout", &self.timeout)
            .field("route", &"<fn>")
            .finish()
    }
}

impl UdpUpstream {
    /// An upstream that sends to `addr:53` for every server address.
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding the local socket.
    pub fn new(timeout: Duration) -> io::Result<UdpUpstream> {
        UdpUpstream::with_route(timeout, |ip| SocketAddr::from((ip, 53)))
    }

    /// An upstream with a custom address → socket mapping (loopback
    /// playgrounds map the universe's synthetic IPs to local ports).
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding the local socket.
    pub fn with_route(
        timeout: Duration,
        route: impl Fn(Ipv4Addr) -> SocketAddr + Send + 'static,
    ) -> io::Result<UdpUpstream> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(UdpUpstream {
            socket,
            timeout,
            route: Box::new(route),
        })
    }

    /// The configured per-query timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }
}

impl Upstream for UdpUpstream {
    fn query(&mut self, server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
        let target = (self.route)(server);
        let bytes = wire::encode(query).ok()?;
        self.socket.send_to(&bytes, target).ok()?;
        let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
        // Bounded receive loop: ignore strays, stop at timeout. The socket
        // read timeout is shrunk to the *remaining* budget on every
        // iteration — re-entering `recv_from` with the full timeout after
        // a stray packet would let one late datagram stretch the wait to
        // ~2× the configured timeout.
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            if self.socket.set_read_timeout(Some(deadline - now)).is_err() {
                return None;
            }
            let Ok((len, from)) = self.socket.recv_from(&mut buf) else {
                return None; // timeout
            };
            if from != target {
                continue;
            }
            let Ok(resp) = wire::decode(&buf[..len]) else {
                continue;
            };
            // Accept only when the ID *and* the echoed question match —
            // ID-only matching is the classic off-path spoofing window.
            if resp.header.response
                && resp.header.id == query.header.id
                && resp.question() == query.question()
            {
                return Some(resp);
            }
        }
    }

    /// Backoff waits on the live path are real sleeps.
    fn wait(&mut self, millis: u64) {
        std::thread::sleep(Duration::from_millis(millis));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Question, RecordType};
    use std::time::Instant;

    /// A fake server that replies to each query through `reply`, after an
    /// optional delay.
    fn fake_server(
        delay: Duration,
        reply: impl Fn(&Message) -> Option<Message> + Send + 'static,
    ) -> SocketAddr {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = sock.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
            while let Ok((len, from)) = sock.recv_from(&mut buf) {
                let Ok(query) = wire::decode(&buf[..len]) else {
                    continue;
                };
                std::thread::sleep(delay);
                if let Some(resp) = reply(&query) {
                    let _ = sock.send_to(&wire::encode(&resp).unwrap(), from);
                }
            }
        });
        addr
    }

    fn upstream_to(addr: SocketAddr, timeout: Duration) -> UdpUpstream {
        UdpUpstream::with_route(timeout, move |_| addr).unwrap()
    }

    fn a_query() -> Message {
        Message::query(
            77,
            Question::new("www.test".parse().unwrap(), RecordType::A),
        )
    }

    #[test]
    fn stray_packet_does_not_extend_the_timeout() {
        // The server answers with a *wrong-ID* response after 200 ms; the
        // upstream's timeout is 300 ms. Before the remaining-deadline fix,
        // the stray re-armed the full 300 ms read timeout and the call
        // blocked for ~500 ms; now it must return close to the deadline.
        let addr = fake_server(Duration::from_millis(200), |query| {
            let mut resp = Message::response_to(query);
            resp.header.id = resp.header.id.wrapping_add(1);
            Some(resp)
        });
        let mut up = upstream_to(addr, Duration::from_millis(300));
        let start = Instant::now();
        let resp = up.query(Ipv4Addr::new(10, 0, 0, 1), &a_query(), SimTime::ZERO);
        let elapsed = start.elapsed();
        assert!(resp.is_none());
        assert!(
            elapsed < Duration::from_millis(450),
            "stray packet extended the wait to {elapsed:?}"
        );
    }

    #[test]
    fn response_with_wrong_question_is_rejected() {
        let addr = fake_server(Duration::ZERO, |query| {
            let mut resp = Message::response_to(query);
            resp.questions = vec![Question::new(
                "spoofed.test".parse().unwrap(),
                RecordType::A,
            )];
            Some(resp)
        });
        let mut up = upstream_to(addr, Duration::from_millis(200));
        assert!(up
            .query(Ipv4Addr::new(10, 0, 0, 1), &a_query(), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn matching_response_is_accepted() {
        let addr = fake_server(Duration::ZERO, |query| Some(Message::response_to(query)));
        let mut up = upstream_to(addr, Duration::from_millis(500));
        let resp = up.query(Ipv4Addr::new(10, 0, 0, 1), &a_query(), SimTime::ZERO);
        assert_eq!(resp.unwrap().header.id, 77);
    }

    #[test]
    fn wait_sleeps_for_the_requested_time() {
        let addr = fake_server(Duration::ZERO, |_| None);
        let mut up = upstream_to(addr, Duration::from_millis(50));
        let start = Instant::now();
        up.wait(60);
        assert!(start.elapsed() >= Duration::from_millis(55));
    }
}
