/root/repo/target/release/deps/dns_resolver-b881b350357e4601.d: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/release/deps/libdns_resolver-b881b350357e4601.rlib: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs

/root/repo/target/release/deps/libdns_resolver-b881b350357e4601.rmeta: crates/dns-resolver/src/lib.rs crates/dns-resolver/src/cache.rs crates/dns-resolver/src/config.rs crates/dns-resolver/src/dnssec.rs crates/dns-resolver/src/infra.rs crates/dns-resolver/src/metrics.rs crates/dns-resolver/src/policy.rs crates/dns-resolver/src/resolve.rs crates/dns-resolver/src/retry.rs crates/dns-resolver/src/upstream.rs

crates/dns-resolver/src/lib.rs:
crates/dns-resolver/src/cache.rs:
crates/dns-resolver/src/config.rs:
crates/dns-resolver/src/dnssec.rs:
crates/dns-resolver/src/infra.rs:
crates/dns-resolver/src/metrics.rs:
crates/dns-resolver/src/policy.rs:
crates/dns-resolver/src/resolve.rs:
crates/dns-resolver/src/retry.rs:
crates/dns-resolver/src/upstream.rs:
