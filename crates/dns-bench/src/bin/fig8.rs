//! Regenerates Figure 8 (refresh + A-LRU renewal) of the DSN 2007 paper.
//! See DESIGN.md §4 for the experiment index.

use dns_bench::experiments::fig8;
use dns_bench::Lab;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    fig8(&mut lab, &TraceSpec::weekly());
    lab.emit_manifest();
}
