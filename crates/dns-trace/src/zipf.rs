//! Deterministic Zipf sampling.

use rand::{Rng, RngExt};
use std::fmt;

/// A Zipf(α) distribution over ranks `0..n`, sampled by inverse-CDF binary
/// search over precomputed cumulative weights.
///
/// Rank 0 is the most popular item. DNS name popularity is classically
/// Zipf-like with α ≈ 0.9 (Jung et al., IMW 2001), which is the default
/// used by the workload generator.
///
/// ```rust
/// use dns_trace::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1000, 0.9);
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(alpha);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point drift in the last bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is degenerate (single rank).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        let prev = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - prev
    }
}

impl fmt::Display for Zipf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zipf(n={}, alpha={})", self.len(), self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.9);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lower_ranks_are_more_likely() {
        let z = Zipf::new(50, 1.0);
        for r in 1..50 {
            assert!(z.pmf(r - 1) > z.pmf(r));
        }
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(10, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.pmf(r) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < expected * 0.1 + 50.0,
                "rank {r}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(1000, 0.9);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }
}
