/root/repo/target/debug/deps/fig8-11b100a0be8a665a.d: crates/dns-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-11b100a0be8a665a: crates/dns-bench/src/bin/fig8.rs

crates/dns-bench/src/bin/fig8.rs:
