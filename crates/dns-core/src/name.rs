//! Domain names and label-wise hierarchy operations.

use crate::DnsError;
use std::fmt;
use std::str::FromStr;

/// Maximum octets in a single label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum octets of a name on the wire, including length bytes and the
/// root's zero octet (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// One label of a domain name, stored lowercase.
///
/// Labels compare case-insensitively per RFC 1035 §2.3.3; we normalise to
/// lowercase at construction so `Eq`/`Hash`/`Ord` are simply byte-wise.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Box<[u8]>);

impl Label {
    /// Creates a label from raw bytes, lowercasing ASCII letters.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::EmptyLabel`] for empty input,
    /// [`DnsError::LabelTooLong`] beyond 63 octets and
    /// [`DnsError::InvalidLabelByte`] for bytes outside `[A-Za-z0-9_-]`.
    pub fn new(bytes: &[u8]) -> Result<Self, DnsError> {
        if bytes.is_empty() {
            return Err(DnsError::EmptyLabel);
        }
        if bytes.len() > MAX_LABEL_LEN {
            return Err(DnsError::LabelTooLong(bytes.len()));
        }
        let mut out = Vec::with_capacity(bytes.len());
        for &b in bytes {
            match b {
                b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' => out.push(b),
                b'A'..=b'Z' => out.push(b.to_ascii_lowercase()),
                other => return Err(DnsError::InvalidLabelByte(other)),
            }
        }
        Ok(Label(out.into_boxed_slice()))
    }

    /// The label's bytes (always lowercase).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in octets, excluding the wire length byte.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label is empty. Always `false` for a constructed label;
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Labels are validated ASCII, so this cannot fail.
        f.write_str(std::str::from_utf8(&self.0).expect("labels are ASCII"))
    }
}

/// A fully qualified domain name: an ordered list of labels, most specific
/// first. The root is the empty list.
///
/// `Name` is the unit the resolver reasons about when it navigates the
/// delegation hierarchy: [`Name::parent`] climbs one step toward the root
/// and [`Name::ancestors`] yields every enclosing zone cut candidate.
///
/// ```rust
/// # fn main() -> Result<(), dns_core::DnsError> {
/// use dns_core::Name;
/// let www: Name = "www.cs.ucla.edu".parse()?;
/// let zone: Name = "ucla.edu".parse()?;
/// assert!(www.is_subdomain_of(&zone));
/// assert_eq!(www.ancestors().count(), 5); // itself, cs.ucla.edu, ucla.edu, edu, root
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name {
    labels: Vec<Label>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Builds a name from labels ordered most specific first.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the wire form would exceed 255
    /// octets.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, DnsError> {
        let name = Name { labels };
        let len = name.wire_len();
        if len > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong(len));
        }
        Ok(name)
    }

    /// Parses dotted text (`"www.ucla.edu"` or `"www.ucla.edu."`; `"."` and
    /// `""` are the root).
    ///
    /// # Errors
    ///
    /// Returns a [`DnsError`] if a label is invalid or the name is too long.
    pub fn parse(s: &str) -> Result<Self, DnsError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for part in trimmed.split('.') {
            labels.push(Label::new(part.as_bytes()).map_err(|e| match e {
                DnsError::EmptyLabel => DnsError::NameParse(s.to_string()),
                other => other,
            })?);
        }
        Name::from_labels(labels)
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The labels, most specific first.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Octets this name occupies on the wire (length bytes + label bytes +
    /// terminating zero), ignoring compression.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }

    /// The name with the leftmost label removed; `None` for the root.
    ///
    /// `www.ucla.edu` → `ucla.edu` → `edu` → `.` → `None`.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec(),
            })
        }
    }

    /// Iterator over this name and every ancestor, ending at the root.
    pub fn ancestors(&self) -> Ancestors<'_> {
        Ancestors {
            name: self,
            next_depth: Some(0),
        }
    }

    /// Whether `self` equals `other` or sits below it in the tree.
    ///
    /// Every name is a subdomain of the root.
    pub fn is_subdomain_of(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// Whether `self` is strictly below `other` (subdomain but not equal).
    pub fn is_proper_subdomain_of(&self, other: &Name) -> bool {
        self.labels.len() > other.labels.len() && self.is_subdomain_of(other)
    }

    /// Creates the child name `label.self`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the result would exceed the wire
    /// limit.
    pub fn child(&self, label: Label) -> Result<Name, DnsError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label);
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Concatenates `self` (as the more specific part) onto `suffix`.
    ///
    /// `Name::parse("www")?.append(&zone)` builds `www.<zone>`.
    ///
    /// # Errors
    ///
    /// Returns [`DnsError::NameTooLong`] if the result would exceed the wire
    /// limit.
    pub fn append(&self, suffix: &Name) -> Result<Name, DnsError> {
        let mut labels = Vec::with_capacity(self.labels.len() + suffix.labels.len());
        labels.extend(self.labels.iter().cloned());
        labels.extend(suffix.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// The number of labels shared with `other`, counted from the root.
    ///
    /// `www.ucla.edu` and `cs.ucla.edu` share 2 (`ucla`, `edu`).
    pub fn common_suffix_len(&self, other: &Name) -> usize {
        self.labels
            .iter()
            .rev()
            .zip(other.labels.iter().rev())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

/// Iterator returned by [`Name::ancestors`]: the name itself, then each
/// parent, ending with the root.
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    name: &'a Name,
    next_depth: Option<usize>,
}

impl Iterator for Ancestors<'_> {
    type Item = Name;

    fn next(&mut self) -> Option<Name> {
        let depth = self.next_depth?;
        let total = self.name.labels.len();
        if depth > total {
            self.next_depth = None;
            return None;
        }
        self.next_depth = if depth == total {
            None
        } else {
            Some(depth + 1)
        };
        Some(Name {
            labels: self.name.labels[depth..].to_vec(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.next_depth {
            Some(d) => self.name.labels.len() - d + 1,
            None => 0,
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Ancestors<'_> {}

impl fmt::Display for Name {
    /// Canonical presentation: absolute form with trailing dot; the root is
    /// a single dot.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for label in &self.labels {
            write!(f, "{label}.")?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = DnsError;
    fn from_str(s: &str) -> Result<Self, DnsError> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        assert_eq!(n("www.ucla.edu").to_string(), "www.ucla.edu.");
        assert_eq!(n("www.ucla.edu.").to_string(), "www.ucla.edu.");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
    }

    #[test]
    fn case_is_normalised() {
        assert_eq!(n("WWW.UCLA.Edu"), n("www.ucla.edu"));
    }

    #[test]
    fn invalid_labels_rejected() {
        assert!(Name::parse("exa mple.com").is_err());
        assert!(Name::parse("a..b").is_err());
        let long = "a".repeat(64);
        assert_eq!(Name::parse(&long).unwrap_err(), DnsError::LabelTooLong(64));
    }

    #[test]
    fn name_length_limit_enforced() {
        // 5 labels of 63 octets = 5*64+1 = 321 wire octets > 255.
        let label = "a".repeat(63);
        let long = [label.as_str(); 5].join(".");
        assert!(matches!(
            Name::parse(&long).unwrap_err(),
            DnsError::NameTooLong(_)
        ));
        // 3 labels of 63 = 193+1 wire octets: fine.
        let ok = [label.as_str(); 3].join(".");
        assert!(Name::parse(&ok).is_ok());
    }

    #[test]
    fn parent_chain_reaches_root() {
        let name = n("www.cs.ucla.edu");
        let mut chain = Vec::new();
        let mut cur = Some(name);
        while let Some(x) = cur {
            chain.push(x.to_string());
            cur = chain.last().map(|s| n(s)).and_then(|x| x.parent());
        }
        assert_eq!(
            chain,
            vec!["www.cs.ucla.edu.", "cs.ucla.edu.", "ucla.edu.", "edu.", "."]
        );
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn ancestors_iterate_most_specific_first() {
        let got: Vec<String> = n("a.b.c").ancestors().map(|x| x.to_string()).collect();
        assert_eq!(got, vec!["a.b.c.", "b.c.", "c.", "."]);
        let root_only: Vec<Name> = Name::root().ancestors().collect();
        assert_eq!(root_only, vec![Name::root()]);
    }

    #[test]
    fn ancestors_size_hint_is_exact() {
        let name = n("a.b.c");
        let it = name.ancestors();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn subdomain_relationships() {
        assert!(n("www.ucla.edu").is_subdomain_of(&n("ucla.edu")));
        assert!(n("www.ucla.edu").is_subdomain_of(&n("edu")));
        assert!(n("www.ucla.edu").is_subdomain_of(&Name::root()));
        assert!(n("ucla.edu").is_subdomain_of(&n("ucla.edu")));
        assert!(!n("ucla.edu").is_proper_subdomain_of(&n("ucla.edu")));
        assert!(n("www.ucla.edu").is_proper_subdomain_of(&n("ucla.edu")));
        assert!(!n("ucla.edu").is_subdomain_of(&n("www.ucla.edu")));
        // Same length, different labels.
        assert!(!n("ucla.edu").is_subdomain_of(&n("ucla.com")));
        // Suffix must fall on a label boundary.
        assert!(!n("aucla.edu").is_subdomain_of(&n("ucla.edu")));
    }

    #[test]
    fn child_and_append() {
        let zone = n("ucla.edu");
        let www = zone.child(Label::new(b"www").unwrap()).unwrap();
        assert_eq!(www, n("www.ucla.edu"));
        let joined = n("a.b").append(&n("c.d")).unwrap();
        assert_eq!(joined, n("a.b.c.d"));
    }

    #[test]
    fn common_suffix() {
        assert_eq!(n("www.ucla.edu").common_suffix_len(&n("cs.ucla.edu")), 2);
        assert_eq!(n("www.ucla.edu").common_suffix_len(&n("www.ucla.com")), 0);
        assert_eq!(n("a.b").common_suffix_len(&Name::root()), 0);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut names = [n("b.com"), n("a.com"), Name::root()];
        names.sort();
        // We only require a deterministic total order for use in BTreeMaps.
        assert_eq!(names.len(), 3);
        assert!(names.windows(2).all(|w| w[0] <= w[1]));
    }
}
