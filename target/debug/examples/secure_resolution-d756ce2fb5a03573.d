/root/repo/target/debug/examples/secure_resolution-d756ce2fb5a03573.d: examples/secure_resolution.rs

/root/repo/target/debug/examples/secure_resolution-d756ce2fb5a03573: examples/secure_resolution.rs

examples/secure_resolution.rs:
