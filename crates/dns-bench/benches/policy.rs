//! Benchmarks for renewal-policy bookkeeping and the renewal scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dns_core::{Name, SimTime, Ttl};
use dns_resolver::{InfraCache, InfraSource, RenewalPolicy};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_credit(c: &mut Criterion) {
    let policies = [
        ("lru", RenewalPolicy::lru(3)),
        ("lfu", RenewalPolicy::lfu(3)),
        ("a_lru", RenewalPolicy::adaptive_lru(3)),
        ("a_lfu", RenewalPolicy::adaptive_lfu(3)),
    ];
    let mut group = c.benchmark_group("policy/credit_on_use");
    for (label, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, p| {
            let ttl = Ttl::from_hours(12);
            b.iter(|| p.credit_on_use(black_box(7), black_box(ttl)))
        });
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    // A cache with thousands of scheduled entries, measuring schedule
    // maintenance under install/pop churn.
    let build = || {
        let mut cache = InfraCache::new();
        cache.install_root_hints(&[("a.root".parse().unwrap(), Ipv4Addr::new(198, 41, 0, 4))]);
        let policy = RenewalPolicy::lru(3);
        for i in 0..5_000u32 {
            let zone: Name = format!("z{i}.com").parse().unwrap();
            cache.install(
                zone.clone(),
                vec![format!("ns1.z{i}.com").parse().unwrap()],
                vec![(
                    format!("ns1.z{i}.com").parse().unwrap(),
                    Ipv4Addr::new(10, 1, (i / 256) as u8, (i % 256) as u8),
                )],
                Ttl::from_secs(600 + i),
                SimTime::ZERO,
                InfraSource::Child,
                true,
            );
            cache.record_use(&zone, SimTime::from_secs(1), Some(&policy));
        }
        cache
    };

    c.bench_function("policy/peek_renewal_due", |b| {
        let mut cache = build();
        b.iter(|| cache.peek_renewal_due())
    });

    c.bench_function("policy/drain_5k_renewals", |b| {
        b.iter_with_setup(build, |mut cache| {
            let mut n = 0;
            while let Some((_, zone)) = cache.next_renewal_due(SimTime::from_days(1)) {
                if cache.consume_renewal_credit(&zone).is_some() {
                    n += 1;
                }
            }
            n
        })
    });
}

criterion_group!(benches, bench_credit, bench_scheduler);
criterion_main!(benches);
