/root/repo/target/release/deps/fig8-e0b53d48344422f3.d: crates/dns-bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-e0b53d48344422f3: crates/dns-bench/src/bin/fig8.rs

crates/dns-bench/src/bin/fig8.rs:
