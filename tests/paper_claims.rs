//! The paper's qualitative claims, asserted end-to-end on a small but
//! non-trivial setup. Each test names the claim it checks.

use dns_resilience::prelude::*;
use dns_resilience::sim::experiment::OverheadOutcome;
use dns_resilience::sim::gap::measure_gaps;

fn setup() -> (Universe, Trace) {
    let u = UniverseSpec::small().build(7);
    let t = TraceSpec::demo().generate(&u, 42);
    (u, t)
}

fn sr_failure(u: &Universe, t: &Trace, scheme: Scheme) -> f64 {
    ExperimentSpec::new(u)
        .trace(t.clone())
        .scheme(scheme)
        .attack(SimTime::from_days(6), &[SimDuration::from_hours(6)])
        .run()
        .attacks[0]
        .sr_failed_pct
}

fn overhead(u: &Universe, t: &Trace, scheme: Scheme, sample: SimDuration) -> OverheadOutcome {
    ExperimentSpec::new(u)
        .trace(t.clone())
        .scheme(scheme)
        .overhead(sample)
        .run()
        .overheads
        .remove(0)
}

/// §1: "the DNS service availability can be improved by one order of
/// magnitude" by combining the schemes.
#[test]
fn order_of_magnitude_improvement() {
    let (u, t) = setup();
    let vanilla = sr_failure(&u, &t, Scheme::vanilla());
    let combined = sr_failure(
        &u,
        &t,
        Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)),
    );
    assert!(
        vanilla > 10.0,
        "vanilla should fail substantially: {vanilla}"
    );
    assert!(
        combined <= vanilla / 10.0,
        "expected ≥10x improvement: vanilla {vanilla:.2}% vs combined {combined:.2}%"
    );
}

/// §5.1.2: "by implementing the refresh of IRRs TTLs the resiliency of
/// the DNS can greatly improve" — refresh never hurts and usually helps.
#[test]
fn refresh_improves_on_vanilla() {
    let (u, t) = setup();
    let vanilla = sr_failure(&u, &t, Scheme::vanilla());
    let refresh = sr_failure(&u, &t, Scheme::refresh());
    assert!(refresh <= vanilla, "refresh {refresh} vs vanilla {vanilla}");
}

/// §5.1.3: policy ordering "LRU ≺ LFU ≺ A-LRU ≺ A-LFU" — the adaptive
/// policies beat their plain counterparts (we assert the adaptive/plain
/// gap, the robust part of the ordering).
#[test]
fn adaptive_policies_beat_plain_ones() {
    let (u, t) = setup();
    let lru = sr_failure(&u, &t, Scheme::renewal(RenewalPolicy::lru(3)));
    let alru = sr_failure(&u, &t, Scheme::renewal(RenewalPolicy::adaptive_lru(3)));
    let lfu = sr_failure(&u, &t, Scheme::renewal(RenewalPolicy::lfu(3)));
    let alfu = sr_failure(&u, &t, Scheme::renewal(RenewalPolicy::adaptive_lfu(3)));
    assert!(alru <= lru + 0.5, "A-LRU {alru} vs LRU {lru}");
    assert!(alfu <= lfu + 0.5, "A-LFU {alfu} vs LFU {lfu}");
}

/// §5.1.4: "a TTL value of five days is almost as good as a TTL value of
/// seven days" — the long-TTL benefit saturates.
#[test]
fn long_ttl_benefit_saturates() {
    let (u, t) = setup();
    let day1 = sr_failure(&u, &t, Scheme::refresh_long_ttl(Ttl::from_days(1)));
    let day5 = sr_failure(&u, &t, Scheme::refresh_long_ttl(Ttl::from_days(5)));
    let day7 = sr_failure(&u, &t, Scheme::refresh_long_ttl(Ttl::from_days(7)));
    assert!(
        day5 <= day1,
        "longer TTL must not hurt: 5d {day5} vs 1d {day1}"
    );
    // Diminishing returns: the 1d→5d step buys far more than 5d→7d.
    // (Our demo trace is sparser than the paper's, so we assert the
    // saturation *shape* rather than near-equality.)
    assert!(
        (day1 - day5) > (day5 - day7) * 2.0,
        "1d {day1} / 5d {day5} / 7d {day7}: benefit should saturate"
    );
}

/// §5.1.5: with renewal in the mix, "a TTL value of three days is good
/// enough to achieve the maximum possible resilience".
#[test]
fn combined_scheme_saturates_at_three_days() {
    let (u, t) = setup();
    let policy = RenewalPolicy::adaptive_lfu(3);
    let d3 = sr_failure(&u, &t, Scheme::combined(policy, Ttl::from_days(3)));
    let d7 = sr_failure(&u, &t, Scheme::combined(policy, Ttl::from_days(7)));
    assert!(
        (d3 - d7).abs() <= 1.0,
        "3d ({d3}) should match 7d ({d7}) once renewal is active"
    );
}

/// §5.2.1: "the refresh and the long-TTL schemes … lead to a decrease in
/// the DNS related generated traffic", while renewal policies add
/// overhead.
#[test]
fn message_overhead_signs_match_table2() {
    let (u, t) = setup();
    let sample = SimDuration::from_days(1);
    let vanilla = overhead(&u, &t, Scheme::vanilla(), sample);
    let refresh = overhead(&u, &t, Scheme::refresh(), sample);
    let long7 = overhead(&u, &t, Scheme::refresh_long_ttl(Ttl::from_days(7)), sample);
    let alfu = overhead(
        &u,
        &t,
        Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),
        sample,
    );

    assert!(
        refresh.message_overhead_pct(&vanilla) < 0.0,
        "refresh overhead {:+.2}%",
        refresh.message_overhead_pct(&vanilla)
    );
    assert!(
        long7.message_overhead_pct(&vanilla) < 0.0,
        "long-TTL overhead {:+.2}%",
        long7.message_overhead_pct(&vanilla)
    );
    assert!(
        alfu.message_overhead_pct(&vanilla) > 0.0,
        "adaptive renewal should add traffic: {:+.2}%",
        alfu.message_overhead_pct(&vanilla)
    );
}

/// §5.2.2: "the proposed caching schemes increase the number of cached
/// objects by two to three times" — bounded memory overhead.
#[test]
fn memory_overhead_is_bounded() {
    let (u, t) = setup();
    let sample = SimDuration::from_days(1);
    let vanilla = overhead(&u, &t, Scheme::vanilla(), sample);
    let combined = overhead(
        &u,
        &t,
        Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)),
        sample,
    );
    let zone_ratio = combined.zone_ratio(&vanilla);
    assert!(zone_ratio > 1.0, "the schemes should cache more zones");
    assert!(
        zone_ratio < 10.0,
        "but not unboundedly more (got {zone_ratio:.1}x)"
    );
}

/// §5 / Figure 3: "in absolute time almost all gaps are less than 5
/// days", while gaps relative to the TTL vary over a wide range.
#[test]
fn gap_distribution_shape() {
    let (u, t) = setup();
    let gaps = measure_gaps(&u, &t);
    assert!(gaps.samples > 100);
    assert!(gaps.absolute_days.fraction_at_or_below(5.0) > 0.9);
    // Relative gaps span beyond 2x the TTL (the long tail the renewal
    // policies are designed around).
    assert!(gaps.fraction_of_ttl.max().unwrap() > 2.0);
}

/// The experiment engine is deterministic: a 4-thread sweep produces
/// outcome vectors identical to a 1-thread (sequential) sweep, field for
/// field, because results are collected in spec order.
#[test]
fn engine_is_thread_count_independent() {
    let (u, t) = setup();
    let build = || {
        ExperimentSpec::new(&u)
            .trace(t.clone())
            .schemes([Scheme::vanilla(), Scheme::refresh()])
            .attack(SimTime::from_days(6), &paper_durations())
            .overhead(SimDuration::from_days(1))
    };
    let seq = build().threads(1).run();
    let par = build().threads(4).run();
    assert_eq!(seq.manifest.threads, 1);
    assert_eq!(par.manifest.threads, 4);
    assert_eq!(format!("{:?}", seq.attacks), format!("{:?}", par.attacks));
    assert_eq!(
        format!("{:?}", seq.overheads),
        format!("{:?}", par.overheads)
    );
}
