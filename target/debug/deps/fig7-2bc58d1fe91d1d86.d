/root/repo/target/debug/deps/fig7-2bc58d1fe91d1d86.d: crates/dns-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-2bc58d1fe91d1d86: crates/dns-bench/src/bin/fig7.rs

crates/dns-bench/src/bin/fig7.rs:
