/root/repo/target/debug/deps/dns_dig-2865f8ccedb35307.d: crates/dns-netd/src/bin/dns-dig.rs

/root/repo/target/debug/deps/dns_dig-2865f8ccedb35307: crates/dns-netd/src/bin/dns-dig.rs

crates/dns-netd/src/bin/dns-dig.rs:
