/root/repo/target/debug/deps/discussion_latency-98444089a81cb702.d: crates/dns-bench/src/bin/discussion_latency.rs Cargo.toml

/root/repo/target/debug/deps/libdiscussion_latency-98444089a81cb702.rmeta: crates/dns-bench/src/bin/discussion_latency.rs Cargo.toml

crates/dns-bench/src/bin/discussion_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
