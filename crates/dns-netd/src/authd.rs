//! The authoritative daemon: an [`AuthServer`] behind a UDP socket.

use dns_auth::AuthServer;
use dns_core::wire;
use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running authoritative name-server daemon.
///
/// One OS thread receives datagrams, hands them to
/// [`AuthServer::handle_query`] and sends the responses back. Malformed
/// datagrams are dropped silently (like real servers under junk traffic).
#[derive(Debug)]
pub struct Authd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    /// Queries served (shared with the worker thread).
    served: Arc<std::sync::atomic::AtomicU64>,
}

impl Authd {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `server`'s zones.
    ///
    /// # Errors
    ///
    /// Returns any socket-level error from binding.
    pub fn spawn(server: AuthServer, bind: impl ToSocketAddrs) -> io::Result<Authd> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_served = Arc::clone(&served);
        let handle = std::thread::Builder::new()
            .name(format!("authd-{addr}"))
            .spawn(move || {
                let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
                while !thread_stop.load(Ordering::Relaxed) {
                    let (len, peer) = match socket.recv_from(&mut buf) {
                        Ok(x) => x,
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            continue
                        }
                        Err(_) => break,
                    };
                    let Ok(query) = wire::decode(&buf[..len]) else {
                        continue; // junk datagram
                    };
                    let response = server.handle_query(&query);
                    // Count before sending so observers that received the
                    // response always see the increment.
                    thread_served.fetch_add(1, Ordering::Relaxed);
                    if let Ok(mut bytes) = wire::encode(&response) {
                        // Echo the client's exact question spelling:
                        // decoding lowercased the name, and 0x20-style
                        // clients reject a re-cased question.
                        wire::patch_question_case(&mut bytes, &buf[..len]);
                        let _ = socket.send_to(&bytes, peer);
                    }
                }
            })
            .expect("spawn authd thread");
        Ok(Authd {
            addr,
            stop,
            handle: Some(handle),
            served,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops the daemon and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Authd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Display for Authd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "authd on {} ({} served)", self.addr, self.served())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use dns_core::{Name, RecordType, ResponseKind, Ttl, ZoneBuilder};
    use std::net::Ipv4Addr;

    fn demo_server() -> AuthServer {
        let zone = ZoneBuilder::new("example.com".parse::<Name>().unwrap())
            .ns(
                "ns1.example.com".parse().unwrap(),
                Ipv4Addr::LOCALHOST,
                Ttl::from_days(1),
            )
            .a(
                "www.example.com".parse().unwrap(),
                Ipv4Addr::new(192, 0, 2, 80),
                Ttl::from_hours(4),
            )
            .build()
            .unwrap();
        let mut s = AuthServer::new("ns1.example.com".parse().unwrap(), Ipv4Addr::LOCALHOST);
        s.add_zone(zone);
        s
    }

    #[test]
    fn serves_queries_over_real_udp() {
        let authd = Authd::spawn(demo_server(), "127.0.0.1:0").unwrap();
        let resp = client::query(
            authd.addr(),
            &"www.example.com".parse().unwrap(),
            RecordType::A,
            Duration::from_millis(500),
        )
        .unwrap();
        assert_eq!(resp.kind(), ResponseKind::Answer);
        assert!(authd.served() >= 1);
        authd.stop();
    }

    #[test]
    fn junk_datagrams_are_ignored() {
        let authd = Authd::spawn(demo_server(), "127.0.0.1:0").unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.send_to(b"\xff\xff not dns", authd.addr()).unwrap();
        // A valid query still gets through afterwards.
        let resp = client::query(
            authd.addr(),
            &"www.example.com".parse().unwrap(),
            RecordType::A,
            Duration::from_millis(500),
        )
        .unwrap();
        assert_eq!(resp.kind(), ResponseKind::Answer);
        authd.stop();
    }

    #[test]
    fn stop_terminates_promptly() {
        let authd = Authd::spawn(demo_server(), "127.0.0.1:0").unwrap();
        let addr = authd.addr();
        authd.stop();
        // The port no longer answers.
        let err = client::query(
            addr,
            &"www.example.com".parse().unwrap(),
            RecordType::A,
            Duration::from_millis(150),
        );
        assert!(err.is_err());
    }
}
