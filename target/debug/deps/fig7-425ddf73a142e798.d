/root/repo/target/debug/deps/fig7-425ddf73a142e798.d: crates/dns-bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-425ddf73a142e798.rmeta: crates/dns-bench/src/bin/fig7.rs Cargo.toml

crates/dns-bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
