/root/repo/target/debug/deps/dns_playground-c44be4039517cdab.d: crates/dns-netd/src/bin/dns-playground.rs Cargo.toml

/root/repo/target/debug/deps/libdns_playground-c44be4039517cdab.rmeta: crates/dns-netd/src/bin/dns-playground.rs Cargo.toml

crates/dns-netd/src/bin/dns-playground.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
