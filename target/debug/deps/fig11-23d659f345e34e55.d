/root/repo/target/debug/deps/fig11-23d659f345e34e55.d: crates/dns-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-23d659f345e34e55: crates/dns-bench/src/bin/fig11.rs

crates/dns-bench/src/bin/fig11.rs:
