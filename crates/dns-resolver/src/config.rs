//! Resolver configuration: which resilience schemes are active.

use crate::{RenewalPolicy, RetryPolicy};
use dns_core::{Name, SimDuration, Ttl};
use std::fmt;
use std::net::Ipv4Addr;

/// Root hints: the hard-coded name-server set for the root zone that every
/// caching server ships with (paper §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootHints {
    servers: Vec<(Name, Ipv4Addr)>,
}

impl RootHints {
    /// Creates hints from `(server name, address)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `servers` is empty — a resolver without root hints can
    /// never resolve anything.
    pub fn new(servers: Vec<(Name, Ipv4Addr)>) -> Self {
        assert!(!servers.is_empty(), "root hints must not be empty");
        RootHints { servers }
    }

    /// The hinted `(name, address)` pairs.
    pub fn servers(&self) -> &[(Name, Ipv4Addr)] {
        &self.servers
    }
}

/// Flood-defense knobs hardening the resolver against NXNSAttack-style
/// delegation amplification and water-torture random-subdomain floods.
///
/// Every knob defaults to `None` (off/unbounded); the default policy is
/// behaviourally invisible — it consumes no randomness and changes no
/// counters, so experiment transcripts captured before this layer existed
/// stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefensePolicy {
    /// MaxFetch(k): per-client-query budget on recursive NS-address
    /// fetches (the glue-chasing fan-out NXNSAttack exploits). When the
    /// budget is exhausted the resolver stops chasing further NS names and
    /// degrades gracefully to whatever addresses resolved within budget —
    /// it never synthesizes a failure just because the budget was hit.
    pub max_ns_fetch: Option<u32>,
    /// Hard entry budget for the negative cache. Inserts beyond the budget
    /// evict the soonest-expiring negative entries first; positive records
    /// are never touched.
    pub neg_cache_max_entries: Option<u32>,
    /// Hard byte budget for the negative cache (approximate: key bytes
    /// plus fixed per-entry overhead). Combined with the entry budget, the
    /// tighter bound wins.
    pub neg_cache_max_bytes: Option<u32>,
    /// Cap on concurrent in-flight upstream walks per target zone in a
    /// shared-cache worker pool, so a flood against one victim zone cannot
    /// starve the pool. Excess queries fail fast without upstream work and
    /// are counted as `flood_suppressed`.
    pub zone_inflight_cap: Option<u32>,
}

impl DefensePolicy {
    /// The default: every defense off/unbounded.
    pub fn off() -> Self {
        DefensePolicy {
            max_ns_fetch: None,
            neg_cache_max_entries: None,
            neg_cache_max_bytes: None,
            zone_inflight_cap: None,
        }
    }

    /// True when every knob is at its default (off) setting.
    pub fn is_off(&self) -> bool {
        *self == DefensePolicy::off()
    }

    /// Label suffix appended to the scheme label when any knob is active.
    fn label_suffix(&self) -> String {
        let mut s = String::new();
        if let Some(k) = self.max_ns_fetch {
            s.push_str(&format!("+maxfetch{k}"));
        }
        if self.neg_cache_max_entries.is_some() || self.neg_cache_max_bytes.is_some() {
            s.push_str("+negcap");
            if let Some(n) = self.neg_cache_max_entries {
                s.push_str(&format!("{n}e"));
            }
            if let Some(b) = self.neg_cache_max_bytes {
                s.push_str(&format!("{b}b"));
            }
        }
        if let Some(c) = self.zone_inflight_cap {
            s.push_str(&format!("+zinflight{c}"));
        }
        s
    }
}

impl Default for DefensePolicy {
    fn default() -> Self {
        DefensePolicy::off()
    }
}

/// Serve-stale and proactive-refresh knobs (RFC 8767 plus the
/// decoupled-update-timing and learned-prefetch variants).
///
/// Every knob defaults to `None` (off); the default policy is
/// behaviourally invisible — it consumes no randomness, changes no
/// counters and leaves the cache's eviction schedule untouched, so
/// experiment transcripts captured before this layer existed stay
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalePolicy {
    /// Serve-stale window: when a demand fetch fails, an expired record
    /// may still answer the client for up to this long past its expiry
    /// (RFC 8767). The failed fetch doubles as the refresh attempt — it
    /// runs through the ordinary resolution path, including the
    /// single-flight table when coalescing is on, so a herd of clients
    /// behind one dead zone shares one upstream walk. Also configures
    /// the cache to *retain* expired positive entries for this long
    /// instead of evicting them at expiry.
    pub max_stale: Option<SimDuration>,
    /// Proactive refresh: after a cache hit whose entry has consumed at
    /// least this percentage of its TTL, re-fetch it immediately so hot
    /// names are renewed ahead of expiry (decoupling update timing from
    /// the TTL). Counted as `refresh_ahead`.
    pub proactive_percent: Option<u8>,
    /// Learned prefetch: track per-name inter-arrival times and, once a
    /// name has at least this many observations, prefetch it when the
    /// predicted next access falls beyond the entry's expiry. Counted as
    /// `prefetch_issued` / `prefetch_hits` / `prefetch_wasted`.
    pub prefetch_min_samples: Option<u32>,
}

impl StalePolicy {
    /// The default: serve-stale, proactive refresh and prefetch all off.
    pub fn off() -> Self {
        StalePolicy {
            max_stale: None,
            proactive_percent: None,
            prefetch_min_samples: None,
        }
    }

    /// True when every knob is at its default (off) setting.
    pub fn is_off(&self) -> bool {
        *self == StalePolicy::off()
    }

    /// Label suffix appended to the scheme label when any knob is active.
    fn label_suffix(&self) -> String {
        let mut s = String::new();
        if let Some(w) = self.max_stale {
            s.push_str(&format!("+stale{}s", w.as_secs()));
        }
        if let Some(p) = self.proactive_percent {
            s.push_str(&format!("+proactive{p}"));
        }
        if let Some(n) = self.prefetch_min_samples {
            s.push_str(&format!("+prefetch{n}"));
        }
        s
    }
}

impl Default for StalePolicy {
    fn default() -> Self {
        StalePolicy::off()
    }
}

/// Configuration of a [`crate::CachingServer`]: the combination of
/// resilience schemes under test.
///
/// Constructors mirror the paper's evaluated systems:
///
/// * [`ResolverConfig::vanilla`] — current DNS (Figure 4),
/// * [`ResolverConfig::with_refresh`] — TTL refresh (Figure 5),
/// * [`ResolverConfig::with_renewal`] — refresh + renewal (Figures 6–9),
/// * long-TTL (Figures 10–11) is a *zone-side* change applied by the
///   simulator; the resolver just honours the longer TTLs up to `ttl_cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolverConfig {
    /// Reset a zone's cached IRR expiry whenever a response from the
    /// zone's own servers carries a copy.
    pub refresh: bool,
    /// Proactive re-fetch of expiring IRRs, budgeted by the policy's
    /// credit; `None` disables renewal.
    pub renewal: Option<RenewalPolicy>,
    /// Upper bound on any accepted TTL. Deployed caching servers reject
    /// TTLs above 7 days (paper §6, "Deployment Issues"); keeping the cap
    /// here means even a misconfigured zone cannot pin the cache forever.
    pub ttl_cap: Ttl,
    /// Upper bound on negative-caching TTLs (SOA `minimum`).
    pub negative_ttl_cap: Ttl,
    /// Maximum time a zone's delegation may go unconfirmed by the parent
    /// before the resolver walks through the parent again, even though
    /// refresh/renewal could keep the child copy alive forever. This is
    /// the paper's §6 safeguard that lets parents reclaim delegations
    /// from non-cooperative former zone owners; the paper suggests
    /// 7 days. `None` disables the recheck (the paper's evaluated
    /// configuration).
    pub parent_recheck: Option<SimDuration>,
    /// Retry/backoff policy for upstream exchanges. The default
    /// ([`RetryPolicy::none`]) keeps the historical single-pass behavior
    /// the virtual-time experiments were published with; the live UDP
    /// path opts into [`RetryPolicy::standard`].
    pub retry: RetryPolicy,
    /// Seed for the resolver's deterministic RNG (query-ID
    /// randomization and backoff jitter). Same seed → same IDs and same
    /// retry schedule.
    pub seed: u64,
    /// Number of data-cache shards a [`crate::ShardedCache`] built for
    /// this configuration should use. The default [`crate::LocalBackend`]
    /// ignores it.
    pub shards: usize,
    /// Single-flight coalescing: top-level cache misses go through the
    /// backend's in-flight table so concurrent identical queries share one
    /// upstream fetch. Off by default — the deterministic experiment
    /// transcripts were captured without the extra cache re-probe a
    /// leader performs.
    pub coalesce: bool,
    /// Flood-defense hardening knobs (MaxFetch(k), negative-cache budget,
    /// per-zone inflight cap). All off by default.
    pub defense: DefensePolicy,
    /// Serve-stale / proactive-refresh / learned-prefetch knobs
    /// (RFC 8767-style resilience). All off by default.
    pub stale: StalePolicy,
}

impl ResolverConfig {
    /// The current DNS: no refresh, no renewal.
    pub fn vanilla() -> Self {
        ResolverConfig {
            refresh: false,
            renewal: None,
            ttl_cap: Ttl::from_days(7),
            negative_ttl_cap: Ttl::from_hours(1),
            parent_recheck: None,
            retry: RetryPolicy::none(),
            seed: 0x0DD5_EED5,
            shards: 1,
            coalesce: false,
            defense: DefensePolicy::off(),
            stale: StalePolicy::off(),
        }
    }

    /// A fluent builder starting from [`ResolverConfig::vanilla`].
    pub fn builder() -> ResolverConfigBuilder {
        ResolverConfigBuilder {
            config: ResolverConfig::vanilla(),
        }
    }

    /// A builder starting from this configuration — the canonical way to
    /// adjust a preset (`ResolverConfig::with_refresh().to_builder()…`).
    pub fn to_builder(self) -> ResolverConfigBuilder {
        ResolverConfigBuilder { config: self }
    }

    /// Enables the §6 parent-recheck safeguard with the given bound.
    #[deprecated(
        since = "0.6.0",
        note = "use ResolverConfig::builder()/.to_builder() \
                                          with .parent_recheck(..) instead"
    )]
    pub fn with_parent_recheck(mut self, every: SimDuration) -> Self {
        self.parent_recheck = Some(every);
        self
    }

    /// Installs a retry/backoff policy for upstream exchanges.
    #[deprecated(
        since = "0.6.0",
        note = "use ResolverConfig::builder()/.to_builder() \
                                          with .retry(..) instead"
    )]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the seed of the resolver's deterministic RNG.
    #[deprecated(
        since = "0.6.0",
        note = "use ResolverConfig::builder()/.to_builder() \
                                          with .seed(..) instead"
    )]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// TTL refresh only.
    pub fn with_refresh() -> Self {
        ResolverConfig {
            refresh: true,
            ..ResolverConfig::vanilla()
        }
    }

    /// TTL refresh plus the given renewal policy (the paper always pairs
    /// renewal with refresh).
    pub fn with_renewal(policy: RenewalPolicy) -> Self {
        ResolverConfig {
            refresh: true,
            renewal: Some(policy),
            ..ResolverConfig::vanilla()
        }
    }

    /// Human-readable scheme label used in experiment output.
    pub fn label(&self) -> String {
        let mut base = match (self.refresh, self.renewal) {
            (false, None) => "vanilla".to_string(),
            (true, None) => "refresh".to_string(),
            (true, Some(p)) => format!("refresh+{}", p.label()),
            (false, Some(p)) => format!("renew-only+{}", p.label()),
        };
        base.push_str(&self.defense.label_suffix());
        base.push_str(&self.stale.label_suffix());
        base
    }
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig::vanilla()
    }
}

/// Fluent constructor for [`ResolverConfig`]: every knob — scheme flags,
/// TTL policy, retry, RNG seed and the concurrency options — in one
/// chain, replacing the scattered `with_*` setters.
///
/// ```rust
/// use dns_resolver::{ResolverConfig, RetryPolicy};
///
/// let config = ResolverConfig::builder()
///     .refresh(true)
///     .retry(RetryPolicy::standard())
///     .seed(42)
///     .shards(8)
///     .coalesce(true)
///     .build();
/// assert!(config.refresh && config.coalesce);
/// assert_eq!(config.shards, 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ResolverConfigBuilder {
    config: ResolverConfig,
}

impl ResolverConfigBuilder {
    /// Enables or disables the TTL-refresh scheme.
    pub fn refresh(mut self, on: bool) -> Self {
        self.config.refresh = on;
        self
    }

    /// Enables TTL renewal under `policy` (implies the paper's pairing
    /// with refresh only if you also set [`refresh`](Self::refresh)).
    pub fn renewal(mut self, policy: RenewalPolicy) -> Self {
        self.config.renewal = Some(policy);
        self
    }

    /// Upper bound on any accepted TTL.
    pub fn ttl_cap(mut self, cap: Ttl) -> Self {
        self.config.ttl_cap = cap;
        self
    }

    /// Upper bound on negative-caching TTLs.
    pub fn negative_ttl_cap(mut self, cap: Ttl) -> Self {
        self.config.negative_ttl_cap = cap;
        self
    }

    /// Enables the §6 parent-recheck safeguard with the given bound.
    pub fn parent_recheck(mut self, every: SimDuration) -> Self {
        self.config.parent_recheck = Some(every);
        self
    }

    /// Retry/backoff policy for upstream exchanges.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Seed for the resolver's deterministic RNG.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Number of data-cache shards for a shared [`crate::ShardedCache`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Enables single-flight coalescing of top-level cache misses.
    pub fn coalesce(mut self, on: bool) -> Self {
        self.config.coalesce = on;
        self
    }

    /// Installs a complete flood-defense policy.
    pub fn defense(mut self, policy: DefensePolicy) -> Self {
        self.config.defense = policy;
        self
    }

    /// MaxFetch(k): per-client-query NS-address fetch budget.
    pub fn max_ns_fetch(mut self, k: u32) -> Self {
        self.config.defense.max_ns_fetch = Some(k);
        self
    }

    /// Hard entry budget for the negative cache.
    pub fn neg_cache_max_entries(mut self, entries: u32) -> Self {
        self.config.defense.neg_cache_max_entries = Some(entries);
        self
    }

    /// Hard byte budget for the negative cache.
    pub fn neg_cache_max_bytes(mut self, bytes: u32) -> Self {
        self.config.defense.neg_cache_max_bytes = Some(bytes);
        self
    }

    /// Per-zone inflight cap for shared-cache worker pools.
    pub fn zone_inflight_cap(mut self, cap: u32) -> Self {
        self.config.defense.zone_inflight_cap = Some(cap);
        self
    }

    /// Installs a complete serve-stale policy.
    pub fn stale(mut self, policy: StalePolicy) -> Self {
        self.config.stale = policy;
        self
    }

    /// Serve-stale window: expired records may answer for up to `window`
    /// past expiry when the demand fetch fails.
    pub fn max_stale(mut self, window: SimDuration) -> Self {
        self.config.stale.max_stale = Some(window);
        self
    }

    /// Proactive refresh threshold as a percentage of TTL consumed.
    pub fn proactive_percent(mut self, percent: u8) -> Self {
        self.config.stale.proactive_percent = Some(percent);
        self
    }

    /// Minimum inter-arrival observations before learned prefetch fires.
    pub fn prefetch_min_samples(mut self, samples: u32) -> Self {
        self.config.stale.prefetch_min_samples = Some(samples);
        self
    }

    /// The finished configuration.
    pub fn build(self) -> ResolverConfig {
        self.config
    }
}

impl fmt::Display for ResolverConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_paper_systems() {
        let v = ResolverConfig::vanilla();
        assert!(!v.refresh);
        assert!(v.renewal.is_none());

        let r = ResolverConfig::with_refresh();
        assert!(r.refresh);
        assert!(r.renewal.is_none());

        let rr = ResolverConfig::with_renewal(RenewalPolicy::adaptive_lfu(3));
        assert!(rr.refresh);
        assert!(rr.renewal.is_some());
    }

    #[test]
    fn labels() {
        assert_eq!(ResolverConfig::vanilla().label(), "vanilla");
        assert_eq!(ResolverConfig::with_refresh().label(), "refresh");
        assert_eq!(
            ResolverConfig::with_renewal(RenewalPolicy::lru(3)).label(),
            "refresh+LRU_3"
        );
    }

    #[test]
    fn ttl_cap_defaults_to_seven_days() {
        assert_eq!(ResolverConfig::vanilla().ttl_cap, Ttl::from_days(7));
    }

    #[test]
    fn builder_covers_every_knob() {
        let c = ResolverConfig::builder()
            .refresh(true)
            .renewal(RenewalPolicy::lru(3))
            .ttl_cap(Ttl::from_days(3))
            .negative_ttl_cap(Ttl::from_mins(10))
            .parent_recheck(SimDuration::from_days(7))
            .retry(RetryPolicy::standard())
            .seed(99)
            .shards(8)
            .coalesce(true)
            .build();
        assert!(c.refresh);
        assert_eq!(c.renewal, Some(RenewalPolicy::lru(3)));
        assert_eq!(c.ttl_cap, Ttl::from_days(3));
        assert_eq!(c.negative_ttl_cap, Ttl::from_mins(10));
        assert_eq!(c.parent_recheck, Some(SimDuration::from_days(7)));
        assert_eq!(c.retry, RetryPolicy::standard());
        assert_eq!(c.seed, 99);
        assert_eq!(c.shards, 8);
        assert!(c.coalesce);
        // The default stays single-pass so virtual-time experiment counts
        // are unchanged.
        assert_eq!(ResolverConfig::vanilla().retry, RetryPolicy::none());
    }

    #[test]
    fn builder_defaults_match_vanilla_and_presets_convert() {
        assert_eq!(ResolverConfig::builder().build(), ResolverConfig::vanilla());
        let c = ResolverConfig::with_refresh().to_builder().seed(7).build();
        assert!(c.refresh);
        assert_eq!(c.seed, 7);
        // Shard counts floor at one.
        assert_eq!(ResolverConfig::builder().shards(0).build().shards, 1);
    }

    /// The deprecated setters keep working until removal.
    #[test]
    #[allow(deprecated)]
    fn deprecated_setters_still_apply() {
        let c = ResolverConfig::vanilla()
            .with_retry(RetryPolicy::standard())
            .with_seed(99)
            .with_parent_recheck(SimDuration::from_days(7));
        assert_eq!(c.retry, RetryPolicy::standard());
        assert_eq!(c.seed, 99);
        assert_eq!(c.parent_recheck, Some(SimDuration::from_days(7)));
    }

    #[test]
    fn defense_defaults_off_and_label_neutral() {
        let v = ResolverConfig::vanilla();
        assert!(v.defense.is_off());
        // Labels are memo/CSV keys — an off policy must not perturb them.
        assert_eq!(v.label(), "vanilla");
        assert_eq!(ResolverConfig::with_refresh().label(), "refresh");
    }

    #[test]
    fn defense_builder_knobs_and_labels() {
        let c = ResolverConfig::builder()
            .max_ns_fetch(4)
            .neg_cache_max_entries(1000)
            .zone_inflight_cap(8)
            .build();
        assert_eq!(c.defense.max_ns_fetch, Some(4));
        assert_eq!(c.defense.neg_cache_max_entries, Some(1000));
        assert_eq!(c.defense.zone_inflight_cap, Some(8));
        assert!(!c.defense.is_off());
        assert_eq!(c.label(), "vanilla+maxfetch4+negcap1000e+zinflight8");

        let d = DefensePolicy {
            neg_cache_max_bytes: Some(4096),
            ..DefensePolicy::off()
        };
        let c = ResolverConfig::builder().defense(d).build();
        assert_eq!(c.label(), "vanilla+negcap4096b");
    }

    #[test]
    fn stale_defaults_off_and_label_neutral() {
        let v = ResolverConfig::vanilla();
        assert!(v.stale.is_off());
        // Labels are memo/CSV keys — an off policy must not perturb them.
        assert_eq!(v.label(), "vanilla");
        assert_eq!(
            ResolverConfig::builder()
                .stale(StalePolicy::off())
                .build()
                .label(),
            "vanilla"
        );
    }

    #[test]
    fn stale_builder_knobs_and_labels() {
        let c = ResolverConfig::builder()
            .max_stale(SimDuration::from_hours(1))
            .proactive_percent(80)
            .prefetch_min_samples(3)
            .build();
        assert_eq!(c.stale.max_stale, Some(SimDuration::from_hours(1)));
        assert_eq!(c.stale.proactive_percent, Some(80));
        assert_eq!(c.stale.prefetch_min_samples, Some(3));
        assert!(!c.stale.is_off());
        assert_eq!(c.label(), "vanilla+stale3600s+proactive80+prefetch3");

        let s = StalePolicy {
            max_stale: Some(SimDuration::from_mins(30)),
            ..StalePolicy::off()
        };
        let c = ResolverConfig::with_refresh().to_builder().stale(s).build();
        assert_eq!(c.label(), "refresh+stale1800s");
    }

    #[test]
    #[should_panic(expected = "root hints must not be empty")]
    fn empty_root_hints_rejected() {
        RootHints::new(vec![]);
    }

    #[test]
    fn root_hints_expose_servers() {
        let hints = RootHints::new(vec![(
            "a.root-servers.net".parse().unwrap(),
            Ipv4Addr::new(198, 41, 0, 4),
        )]);
        assert_eq!(hints.servers().len(), 1);
    }
}
