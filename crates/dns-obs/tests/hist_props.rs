//! Property suite for `LogHistogram` (satellite of ISSUE 5).
//!
//! Three families of properties, checked against a naive
//! `Vec<u64>`-sorted model:
//!
//! 1. p50/p90/p99 agree with the model's nearest-rank percentile to
//!    within one bucket (exactly: the histogram reports the upper bound
//!    of the bucket holding the model's answer, so the relative error is
//!    bounded by the bucket's 12.5% width).
//! 2. merge is associative and commutative.
//! 3. the record / quantile / merge / diff paths perform zero
//!    allocations, enforced by a counting global allocator (the same
//!    guard pattern as `dns-bench/benches/cache.rs`).

use dns_obs::LogHistogram;
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Delegates to the system allocator, counting every allocation so the
/// zero-allocation property below can observe the record path.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by `op`.
fn allocs_during(mut op: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    op();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Nearest-rank percentile over raw samples — the same rank rule as
/// `dns_stats::Summary::percentile` and `LogHistogram::percentile`.
fn naive_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

fn build(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Latency-like samples spanning every octave regime: exact small
/// values, realistic millisecond ranges, and extreme magnitudes.
fn sample_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..8,
        8u64..1_000,
        1_000u64..100_000,
        Just(u64::MAX),
        (0u32..64).prop_map(|b| 1u64 << b),
    ]
}

fn sample_vec(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(sample_value(), 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentiles_match_naive_model(values in sample_vec(64)) {
        let hist = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [50.0, 90.0, 99.0] {
            let expect = naive_percentile(&sorted, p);
            let got = hist.percentile(p).unwrap();
            // Bucket-exact: the histogram answers with the upper bound
            // of the bucket holding the model's answer...
            let (lo, hi) =
                LogHistogram::bucket_range(LogHistogram::bucket_index(expect));
            prop_assert_eq!(got, hi);
            prop_assert!(got >= expect && lo <= expect);
            // ...so the relative error is within one bucket's width
            // (12.5%, or ±1 below the first octave).
            let err = got - expect;
            prop_assert!(
                err as f64 <= (expect as f64 / 8.0).max(0.0) + 1e-9,
                "p{}: got {} expected {} (err {})", p, got, expect, err
            );
        }
    }

    #[test]
    fn count_sum_and_max_match_model(values in sample_vec(64)) {
        let hist = build(&values);
        prop_assert_eq!(hist.count(), values.len() as u64);
        let naive_sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(hist.sum(), naive_sum);
        let naive_max = *values.iter().max().unwrap();
        let (lo, hi) =
            LogHistogram::bucket_range(LogHistogram::bucket_index(naive_max));
        prop_assert_eq!(hist.max(), Some(hi));
        prop_assert!(lo <= naive_max);
    }

    #[test]
    fn merge_is_commutative(a in sample_vec(32), b in sample_vec(32)) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // Merging equals recording the concatenation.
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(&ab, &build(&concat));
    }

    #[test]
    fn merge_is_associative(
        a in sample_vec(16),
        b in sample_vec(16),
        c in sample_vec(16),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone(); // (a ∪ b) ∪ c
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone(); // a ∪ (b ∪ c)
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn diff_inverts_merge(
        // Bounded samples: the inversion a ∪ b − a = b only holds while
        // the saturating sum has headroom, which real latencies always
        // have.
        a in proptest::collection::vec(0u64..1_000_000, 1..=32),
        b in proptest::collection::vec(0u64..1_000_000, 1..=32),
    ) {
        let (ha, hb) = (build(&a), build(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.diff(&ha), hb);
        prop_assert_eq!(merged.diff(&hb), ha);
    }

    #[test]
    fn record_and_snapshot_paths_do_not_allocate(values in sample_vec(64)) {
        let mut hist = build(&values);
        let other = build(&values);
        let mut sink = 0u64;
        let allocs = allocs_during(|| {
            for &v in &values {
                hist.record(v);
            }
            sink ^= hist.percentile(50.0).unwrap();
            sink ^= hist.percentile(90.0).unwrap();
            sink ^= hist.percentile(99.0).unwrap();
            sink ^= hist.max().unwrap();
            sink = sink.wrapping_add(hist.sum());
            hist.merge(&other);
        });
        prop_assert_eq!(allocs, 0);
        std::hint::black_box(sink);
    }
}

#[test]
fn clone_preallocates_then_record_is_alloc_free() {
    // A freshly cloned histogram (the per-window snapshot pattern used
    // by the sweep engine) must also record without allocating.
    let orig = build(&[1, 40, 1000]);
    let mut snap = orig.clone();
    let allocs = allocs_during(|| {
        for v in 0..1000u64 {
            snap.record(v * 7);
        }
        std::hint::black_box(snap.diff(&orig).count());
    });
    assert_eq!(allocs, 0, "clone+record+diff allocated");
}
