/root/repo/target/debug/deps/discussion_maxdamage-898f7e31050fe3c2.d: crates/dns-bench/src/bin/discussion_maxdamage.rs

/root/repo/target/debug/deps/discussion_maxdamage-898f7e31050fe3c2: crates/dns-bench/src/bin/discussion_maxdamage.rs

crates/dns-bench/src/bin/discussion_maxdamage.rs:
