/root/repo/target/debug/deps/dns_netd-36b3890721dfc02b.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/libdns_netd-36b3890721dfc02b.rlib: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/debug/deps/libdns_netd-36b3890721dfc02b.rmeta: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
