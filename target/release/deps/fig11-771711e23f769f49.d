/root/repo/target/release/deps/fig11-771711e23f769f49.d: crates/dns-bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-771711e23f769f49: crates/dns-bench/src/bin/fig11.rs

crates/dns-bench/src/bin/fig11.rs:
