/root/repo/target/debug/deps/fig3-aef724750a54bb01.d: crates/dns-bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-aef724750a54bb01: crates/dns-bench/src/bin/fig3.rs

crates/dns-bench/src/bin/fig3.rs:
