/root/repo/target/debug/deps/zonefile_roundtrip-7996d7be466116c6.d: tests/zonefile_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libzonefile_roundtrip-7996d7be466116c6.rmeta: tests/zonefile_roundtrip.rs Cargo.toml

tests/zonefile_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
