/root/repo/target/debug/deps/discussion_latency-8b3c2d03d1df407a.d: crates/dns-bench/src/bin/discussion_latency.rs

/root/repo/target/debug/deps/discussion_latency-8b3c2d03d1df407a: crates/dns-bench/src/bin/discussion_latency.rs

crates/dns-bench/src/bin/discussion_latency.rs:
