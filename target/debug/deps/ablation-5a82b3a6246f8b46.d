/root/repo/target/debug/deps/ablation-5a82b3a6246f8b46.d: crates/dns-bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-5a82b3a6246f8b46: crates/dns-bench/src/bin/ablation.rs

crates/dns-bench/src/bin/ablation.rs:
