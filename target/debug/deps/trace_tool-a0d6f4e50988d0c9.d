/root/repo/target/debug/deps/trace_tool-a0d6f4e50988d0c9.d: crates/dns-bench/src/bin/trace_tool.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tool-a0d6f4e50988d0c9.rmeta: crates/dns-bench/src/bin/trace_tool.rs Cargo.toml

crates/dns-bench/src/bin/trace_tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
