//! Synthetic DNS tree generation.
//!
//! Produces a [`Universe`]: a delegation tree shaped like the 2006 DNS the
//! paper probed — a root, a few hundred TLDs with multi-day infrastructure
//! TTLs, a Zipf-skewed population of second-level zones with the paper's
//! observed minutes-to-days IRR TTL mixture, and a sprinkling of deeper
//! zones (the `cs.ucla.edu` pattern).

use crate::{TtlModel, Zipf};
use dns_core::{Delegation, Label, Name, RData, Record, Ttl, Zone, ZoneBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One generated zone, before conversion to a full [`Zone`].
#[derive(Debug, Clone)]
pub struct ZoneSpec {
    /// Zone apex.
    pub apex: Name,
    /// Parent apex (`None` for the root).
    pub parent: Option<Name>,
    /// Authoritative servers: `(name, address)`.
    pub ns: Vec<(Name, Ipv4Addr)>,
    /// TTL of the zone's infrastructure records.
    pub infra_ttl: Ttl,
    /// Plain `A`-record names: `(owner, ttl)`.
    pub data_names: Vec<(Name, Ttl)>,
    /// CNAME records: `(alias, target, ttl)`.
    pub cnames: Vec<(Name, Name, Ttl)>,
    /// Whether the apex publishes an MX record (pointing at
    /// `mail.<apex>`).
    pub has_mx: bool,
    /// Synthetic DNSSEC key `(key_tag, public_key)` when the zone is
    /// signed; the parent's delegation then carries the matching DS.
    pub dnskey: Option<(u16, u32)>,
}

impl ZoneSpec {
    /// All names inside this zone a client might query (data names,
    /// aliases, and the apex when it has an MX).
    pub fn query_names(&self) -> impl Iterator<Item = &Name> {
        self.data_names
            .iter()
            .map(|(n, _)| n)
            .chain(self.cnames.iter().map(|(a, _, _)| a))
    }
}

/// Parameters for [`Universe`] generation.
#[derive(Debug, Clone, PartialEq)]
pub struct UniverseSpec {
    /// Number of top-level domains.
    pub tld_count: usize,
    /// Number of second-level zones.
    pub sld_count: usize,
    /// Fraction of second-level zones that delegate child zones.
    pub deep_zone_fraction: f64,
    /// Maximum child zones under a deep second-level zone.
    pub max_children: usize,
    /// Fraction of zones whose second name-server lives in a foreign zone
    /// (no glue at the parent).
    pub out_of_bailiwick_fraction: f64,
    /// Maximum plain data names per zone (at least one is generated).
    pub max_data_names: usize,
    /// Fraction of zones that also publish a CNAME alias.
    pub cname_fraction: f64,
    /// Fraction of zones that publish an apex MX.
    pub mx_fraction: f64,
    /// Zipf exponent skewing how second-level zones pile onto TLDs.
    pub tld_skew: f64,
    /// Fraction of zones signed with a synthetic DNSSEC key (paper §6).
    /// Zero by default so the headline experiments match the unsigned
    /// 2006 DNS the paper measured.
    pub signed_fraction: f64,
}

impl UniverseSpec {
    /// A compact universe (~3k zones) for tests and the quickstart.
    pub fn small() -> Self {
        UniverseSpec {
            tld_count: 40,
            sld_count: 2_500,
            deep_zone_fraction: 0.08,
            max_children: 3,
            out_of_bailiwick_fraction: 0.12,
            max_data_names: 4,
            cname_fraction: 0.25,
            mx_fraction: 0.30,
            tld_skew: 0.9,
            signed_fraction: 0.0,
        }
    }

    /// The experiment-scale universe (~10k zones), matching the order of
    /// magnitude of distinct zones in the paper's traces while keeping a
    /// full sweep tractable on one core.
    pub fn standard() -> Self {
        UniverseSpec {
            tld_count: 250,
            sld_count: 8_000,
            deep_zone_fraction: 0.08,
            max_children: 4,
            out_of_bailiwick_fraction: 0.12,
            max_data_names: 5,
            cname_fraction: 0.25,
            mx_fraction: 0.30,
            tld_skew: 0.9,
            signed_fraction: 0.0,
        }
    }

    /// A small universe where every zone below the TLDs is signed — for
    /// exercising the §6 DNSSEC extension at scale.
    pub fn small_signed() -> Self {
        UniverseSpec {
            signed_fraction: 1.0,
            ..UniverseSpec::small()
        }
    }

    /// Generates the universe deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Universe {
        let (sink, root_servers) =
            Generator::new(self.clone(), seed, UniverseSink::default()).run();
        Universe {
            zones: sink.zones,
            index: sink.index,
            children: sink.children,
            root_servers,
        }
    }

    /// Generates the same tree as [`UniverseSpec::build`] — identical
    /// seed, identical RNG stream — but compresses every zone into a
    /// compact interned record as it is produced instead of keeping the
    /// [`ZoneSpec`]s, so memory stays `O(zones)` with a tiny constant:
    /// the path to namespaces of millions of zones.
    pub fn build_interned(&self, seed: u64) -> crate::InternedNamespace {
        let (sink, _) =
            Generator::new(self.clone(), seed, crate::intern::InternedSink::default()).run();
        sink.seal()
    }
}

/// Where generated zones go: [`Universe::build`](UniverseSpec::build)
/// collects full [`ZoneSpec`]s, the interned path compresses each one on
/// arrival. The generator reads back only what later zones need — the
/// running count, an apex, a donor zone's primary server.
pub(crate) trait ZoneSink {
    /// Accepts the next generated zone. Zone `idx` is assigned in call
    /// order.
    fn push(&mut self, spec: ZoneSpec);
    /// Zones accepted so far.
    fn len(&self) -> usize;
    /// The apex of an earlier zone (deep-zone pass).
    fn apex(&self, idx: usize) -> Name;
    /// The primary name server of an earlier zone (out-of-bailiwick
    /// donor lookup).
    fn ns0(&self, idx: usize) -> (Name, Ipv4Addr);
}

/// The collecting sink behind [`UniverseSpec::build`].
#[derive(Debug, Default)]
struct UniverseSink {
    zones: Vec<ZoneSpec>,
    index: HashMap<Name, usize>,
    children: HashMap<Name, Vec<usize>>,
}

impl ZoneSink for UniverseSink {
    fn push(&mut self, spec: ZoneSpec) {
        let idx = self.zones.len();
        if let Some(parent) = &spec.parent {
            self.children.entry(parent.clone()).or_default().push(idx);
        }
        self.index.insert(spec.apex.clone(), idx);
        self.zones.push(spec);
    }

    fn len(&self) -> usize {
        self.zones.len()
    }

    fn apex(&self, idx: usize) -> Name {
        self.zones[idx].apex.clone()
    }

    fn ns0(&self, idx: usize) -> (Name, Ipv4Addr) {
        self.zones[idx].ns[0].clone()
    }
}

/// Parameters for NXNSAttack-style delegation-bomb injection
/// ([`Universe::with_delegation_bombs`]).
///
/// Each bomb is a malicious zone whose delegation names `fanout`
/// nonexistent out-of-zone name-server hosts: the referral carries no glue
/// (the servers are out of bailiwick) and every server-name lookup is a
/// guaranteed NXDOMAIN, so one query against a cold bomb zone drives the
/// resolver through `fanout` futile glue-chasing walks — the
/// amplification MaxFetch(k) clamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NxnsBombSpec {
    /// Number of bomb zones to graft onto the existing TLDs.
    pub bombs: usize,
    /// Nonexistent out-of-zone NS names per bomb zone.
    pub fanout: usize,
}

impl NxnsBombSpec {
    /// A bomb set with the given shape.
    pub fn new(bombs: usize, fanout: usize) -> Self {
        NxnsBombSpec { bombs, fanout }
    }
}

/// A generated DNS tree plus the bookkeeping the simulator needs.
#[derive(Debug, Clone)]
pub struct Universe {
    zones: Vec<ZoneSpec>,
    index: HashMap<Name, usize>,
    children: HashMap<Name, Vec<usize>>,
    root_servers: Vec<(Name, Ipv4Addr)>,
}

impl Universe {
    /// Reassembles a universe from zone specs (as loaded from a file).
    /// The root zone's servers become the root hints.
    ///
    /// # Errors
    ///
    /// Returns [`dns_core::DnsError::InvalidZone`] when no root zone is
    /// present or a zone references a missing parent.
    pub fn from_zone_specs(zones: Vec<ZoneSpec>) -> Result<Universe, dns_core::DnsError> {
        let mut index = HashMap::new();
        let mut children: HashMap<Name, Vec<usize>> = HashMap::new();
        for (i, spec) in zones.iter().enumerate() {
            index.insert(spec.apex.clone(), i);
            if let Some(parent) = &spec.parent {
                children.entry(parent.clone()).or_default().push(i);
            }
        }
        for spec in &zones {
            if let Some(parent) = &spec.parent {
                if !index.contains_key(parent) {
                    return Err(dns_core::DnsError::InvalidZone(format!(
                        "zone {} references missing parent {}",
                        spec.apex, parent
                    )));
                }
            }
        }
        let root_servers = index
            .get(&Name::root())
            .map(|&i| zones[i].ns.clone())
            .ok_or_else(|| dns_core::DnsError::InvalidZone("no root zone".to_string()))?;
        Ok(Universe {
            zones,
            index,
            children,
            root_servers,
        })
    }

    /// Number of zones (including the root).
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// All zone specs, root first.
    pub fn zones(&self) -> &[ZoneSpec] {
        &self.zones
    }

    /// Looks up a zone spec by apex.
    pub fn get(&self, apex: &Name) -> Option<&ZoneSpec> {
        self.index.get(apex).map(|&i| &self.zones[i])
    }

    /// The deepest zone containing `name`.
    pub fn zone_of(&self, name: &Name) -> Option<&ZoneSpec> {
        name.ancestors()
            .find_map(|a| self.index.get(&a))
            .map(|&i| &self.zones[i])
    }

    /// Direct child zones of `apex`.
    pub fn children_of(&self, apex: &Name) -> impl Iterator<Item = &ZoneSpec> {
        self.children
            .get(apex)
            .into_iter()
            .flatten()
            .map(|&i| &self.zones[i])
    }

    /// The root-server hints `(name, address)` a resolver needs.
    pub fn root_servers(&self) -> &[(Name, Ipv4Addr)] {
        &self.root_servers
    }

    /// Apexes of the root and all top-level zones — the attack target set
    /// of the paper's headline experiment.
    pub fn root_and_tld_apexes(&self) -> Vec<Name> {
        self.zones
            .iter()
            .filter(|z| z.apex.label_count() <= 1)
            .map(|z| z.apex.clone())
            .collect()
    }

    /// Materialises one zone as a servable [`Zone`] with its delegations.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is inconsistent (cannot happen for generated
    /// universes).
    pub fn build_zone(&self, spec: &ZoneSpec) -> Zone {
        let mut builder = ZoneBuilder::new(spec.apex.clone()).infra_ttl(spec.infra_ttl);
        if let Some((key_tag, public_key)) = spec.dnskey {
            builder = builder.dnskey(key_tag, public_key);
        }
        for (ns_name, addr) in &spec.ns {
            builder = builder.ns(ns_name.clone(), *addr, spec.infra_ttl);
        }
        for (owner, ttl) in &spec.data_names {
            builder = builder.a(owner.clone(), self.addr_for_host(owner), *ttl);
        }
        for (alias, target, ttl) in &spec.cnames {
            builder = builder.record(Record::new(
                alias.clone(),
                *ttl,
                RData::Cname(target.clone()),
            ));
        }
        if spec.has_mx {
            let mail = child_name("mail", &spec.apex);
            builder = builder
                .record(Record::new(
                    spec.apex.clone(),
                    Ttl::from_hours(4),
                    RData::Mx {
                        preference: 10,
                        exchange: mail.clone(),
                    },
                ))
                .a(mail.clone(), self.addr_for_host(&mail), Ttl::from_hours(4));
        }
        for child in self.children_of(&spec.apex) {
            let glue: Vec<Record> = child
                .ns
                .iter()
                .filter(|(n, _)| n.is_subdomain_of(&child.apex))
                .map(|(n, a)| Record::new(n.clone(), child.infra_ttl, RData::A(*a)))
                .collect();
            let ds = child
                .dnskey
                .map(|(key_tag, public_key)| {
                    vec![Record::new(
                        child.apex.clone(),
                        child.infra_ttl,
                        RData::Ds {
                            key_tag,
                            digest: dns_core::synthetic_key_digest(public_key),
                        },
                    )]
                })
                .unwrap_or_default();
            builder = builder.delegate(Delegation {
                child: child.apex.clone(),
                ns_names: child.ns.iter().map(|(n, _)| n.clone()).collect(),
                ns_ttl: child.infra_ttl,
                glue,
                ds,
            });
        }
        builder.build().expect("generated zones are consistent")
    }

    /// A copy of this universe in which every non-root zone publishes its
    /// infrastructure records with `ttl` — the paper's *long-TTL* scheme
    /// applied by all zone operators at once (Figures 10–11).
    ///
    /// Both the zones' own IRR copies and the parent-side delegation
    /// copies are affected, because delegations are derived from the
    /// child's `infra_ttl` when zones are materialised.
    pub fn with_infra_ttl_override(&self, ttl: Ttl) -> Universe {
        let mut out = self.clone();
        for spec in &mut out.zones {
            if !spec.apex.is_root() {
                spec.infra_ttl = ttl;
            }
        }
        out
    }

    /// A copy of this universe with NXNSAttack delegation bombs grafted
    /// onto the existing TLDs (round-robin).
    ///
    /// Bomb zone `i` is `bomb{i:04}.<tld>`; its `ns` list names
    /// `spec.fanout` hosts `nx-b{i}-{j}.<donor SLD>` that do **not** exist
    /// in their donor zones (the generator never emits `nx*` labels), so
    /// the parent's referral carries no glue and every server-address
    /// chase ends in NXDOMAIN. Bomb zones publish no data names, aliases,
    /// or MX, so [`Universe::query_targets`] — and therefore any trace
    /// generated from this universe — is unchanged by the injection;
    /// only an adversary stream ever touches a bomb.
    ///
    /// # Panics
    ///
    /// Panics when the universe has no TLDs or no second-level donor
    /// zones (cannot happen for generated universes).
    pub fn with_delegation_bombs(&self, spec: NxnsBombSpec) -> Universe {
        let tlds: Vec<Name> = self
            .zones
            .iter()
            .filter(|z| z.apex.label_count() == 1)
            .map(|z| z.apex.clone())
            .collect();
        let donors: Vec<Name> = self
            .zones
            .iter()
            .filter(|z| z.apex.label_count() == 2 && !z.data_names.is_empty())
            .map(|z| z.apex.clone())
            .collect();
        assert!(
            !tlds.is_empty() && !donors.is_empty(),
            "delegation bombs need TLDs and donor SLDs"
        );
        let mut out = self.clone();
        // Bomb "server" addresses come from the 198.18/15 benchmarking
        // range: disjoint from the generator's sequential 10/8 servers and
        // the 172.16/12 data hosts. They are unreachable by construction —
        // the names resolving to them never exist.
        let mut next_addr = u32::from_be_bytes([198, 18, 0, 1]);
        for i in 0..spec.bombs {
            let parent = tlds[i % tlds.len()].clone();
            let apex = child_name(&format!("bomb{i:04}"), &parent);
            let ns = (0..spec.fanout)
                .map(|j| {
                    let donor = &donors[(i * spec.fanout + j) % donors.len()];
                    let name = child_name(&format!("nx-b{i}-{j}"), donor);
                    let addr = Ipv4Addr::from(next_addr);
                    next_addr += 1;
                    (name, addr)
                })
                .collect();
            let idx = out.zones.len();
            out.index.insert(apex.clone(), idx);
            out.children.entry(parent.clone()).or_default().push(idx);
            out.zones.push(ZoneSpec {
                apex,
                parent: Some(parent),
                ns,
                infra_ttl: Ttl::from_hours(1),
                data_names: Vec::new(),
                cnames: Vec::new(),
                has_mx: false,
                dnskey: None,
            });
        }
        out
    }

    /// Apexes of the delegation-bomb zones injected by
    /// [`Universe::with_delegation_bombs`], in injection order (empty for
    /// an unmodified universe). Bombs are the only zones below the TLDs
    /// that publish no query targets.
    pub fn delegation_bomb_apexes(&self) -> Vec<Name> {
        self.zones
            .iter()
            .filter(|z| z.apex.label_count() >= 2 && z.data_names.is_empty() && z.cnames.is_empty())
            .map(|z| z.apex.clone())
            .collect()
    }

    /// Materialises every zone, shared behind `Arc` for the simulator's
    /// server farm.
    pub fn build_all_zones(&self) -> HashMap<Name, Arc<Zone>> {
        self.zones
            .iter()
            .map(|spec| (spec.apex.clone(), Arc::new(self.build_zone(spec))))
            .collect()
    }

    /// Which zones each server address serves (a shared name-server may
    /// serve many zones).
    pub fn server_assignments(&self) -> HashMap<Ipv4Addr, Vec<Name>> {
        let mut map: HashMap<Ipv4Addr, Vec<Name>> = HashMap::new();
        for spec in &self.zones {
            for (_, addr) in &spec.ns {
                map.entry(*addr).or_default().push(spec.apex.clone());
            }
        }
        map
    }

    /// A deterministic synthetic address for a data host name.
    fn addr_for_host(&self, name: &Name) -> Ipv4Addr {
        // Hash the name into the 172.16/12 test range; collisions are
        // harmless (the experiments only check resolvability).
        let mut h: u32 = 0x811c_9dc5;
        for label in name.labels() {
            for &b in label {
                h ^= u32::from(b);
                h = h.wrapping_mul(0x0100_0193);
            }
        }
        Ipv4Addr::from(0xAC10_0000 | (h & 0x000F_FFFF))
    }

    /// Every client-queryable name: `(name, owning zone index)`.
    pub fn query_targets(&self) -> Vec<(Name, usize)> {
        let mut targets = Vec::new();
        for (idx, spec) in self.zones.iter().enumerate() {
            for name in spec.query_names() {
                targets.push((name.clone(), idx));
            }
            if spec.has_mx {
                targets.push((spec.apex.clone(), idx));
            }
        }
        targets
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "universe ({} zones, {} root servers)",
            self.zones.len(),
            self.root_servers.len()
        )
    }
}

fn child_name(label: &str, parent: &Name) -> Name {
    parent
        .child(Label::new(label.as_bytes()).expect("static labels are valid"))
        .expect("generated names are short")
}

struct Generator<S: ZoneSink> {
    spec: UniverseSpec,
    rng: StdRng,
    next_addr: u32,
    sink: S,
    infra_ttls: TtlModel,
    top_ttls: TtlModel,
    data_ttls: TtlModel,
}

impl<S: ZoneSink> Generator<S> {
    fn new(spec: UniverseSpec, seed: u64, sink: S) -> Self {
        Generator {
            spec,
            rng: StdRng::seed_from_u64(seed),
            next_addr: u32::from_be_bytes([10, 0, 0, 1]),
            sink,
            infra_ttls: TtlModel::infrastructure(),
            top_ttls: TtlModel::top_level(),
            data_ttls: TtlModel::data(),
        }
    }

    fn addr(&mut self) -> Ipv4Addr {
        let a = Ipv4Addr::from(self.next_addr);
        self.next_addr += 1;
        a
    }

    fn push_zone(&mut self, spec: ZoneSpec) {
        self.sink.push(spec);
    }

    fn run(mut self) -> (S, Vec<(Name, Ipv4Addr)>) {
        // Root.
        let root_servers: Vec<(Name, Ipv4Addr)> = (0..2)
            .map(|i| {
                let name: Name = format!("{}.root-servers.net", (b'a' + i) as char)
                    .parse()
                    .expect("static name");
                let addr = self.addr();
                (name, addr)
            })
            .collect();
        self.push_zone(ZoneSpec {
            apex: Name::root(),
            parent: None,
            ns: root_servers.clone(),
            infra_ttl: Ttl::from_days(7),
            data_names: Vec::new(),
            cnames: Vec::new(),
            has_mx: false,
            dnskey: None,
        });

        // TLDs: a handful of real generic labels plus generated ones.
        let mut tld_names: Vec<Name> = Vec::new();
        let real = [
            "com", "net", "org", "edu", "gov", "uk", "cn", "de", "jp", "fr",
        ];
        for label in real.iter().take(self.spec.tld_count) {
            tld_names.push(label.parse().expect("static label"));
        }
        for i in tld_names.len()..self.spec.tld_count {
            tld_names.push(format!("t{i:03}").parse().expect("generated label"));
        }
        for apex in &tld_names {
            let ns_count = 2 + (self.rng.random_range(0..2usize));
            let ttl = self.top_ttls.sample(&mut self.rng);
            let ns = (0..ns_count)
                .map(|i| {
                    let name = child_name(&format!("ns{}", i + 1), apex);
                    let addr = self.addr();
                    (name, addr)
                })
                .collect();
            self.push_zone(ZoneSpec {
                apex: apex.clone(),
                parent: Some(Name::root()),
                ns,
                infra_ttl: ttl,
                data_names: Vec::new(),
                cnames: Vec::new(),
                has_mx: false,
                dnskey: None,
            });
        }

        // Second-level zones, Zipf-piled onto TLDs.
        let tld_zipf = Zipf::new(tld_names.len(), self.spec.tld_skew);
        let first_sld = self.sink.len();
        for i in 0..self.spec.sld_count {
            let tld = &tld_names[tld_zipf.sample(&mut self.rng)];
            let apex = child_name(&format!("z{i:05}"), tld);
            let spec = self.make_leafish_zone(apex, tld.clone(), first_sld);
            self.push_zone(spec);
        }

        // Deeper zones under a fraction of the second-level zones.
        let sld_range = first_sld..self.sink.len();
        let mut deep_parents: Vec<usize> = Vec::new();
        for idx in sld_range {
            if self.rng.random::<f64>() < self.spec.deep_zone_fraction {
                deep_parents.push(idx);
            }
        }
        for parent_idx in deep_parents {
            let parent_apex = self.sink.apex(parent_idx);
            let n_children = self.rng.random_range(1..=self.spec.max_children);
            for c in 0..n_children {
                let apex = child_name(&format!("sub{c}"), &parent_apex);
                let spec = self.make_leafish_zone(apex, parent_apex.clone(), first_sld);
                self.push_zone(spec);
            }
        }

        (self.sink, root_servers)
    }

    /// A zone that mainly serves data (second-level or deeper).
    fn make_leafish_zone(&mut self, apex: Name, parent: Name, first_sld: usize) -> ZoneSpec {
        let infra_ttl = self.infra_ttls.sample(&mut self.rng);
        let mut ns: Vec<(Name, Ipv4Addr)> = Vec::new();
        let own = child_name("ns1", &apex);
        let own_addr = self.addr();
        ns.push((own, own_addr));
        // Second server: usually in-zone, sometimes hosted by an earlier
        // zone's server (out-of-bailiwick, no glue possible).
        if self.sink.len() > first_sld
            && self.rng.random::<f64>() < self.spec.out_of_bailiwick_fraction
        {
            let donor_idx = self.rng.random_range(first_sld..self.sink.len());
            ns.push(self.sink.ns0(donor_idx));
        } else {
            ns.push((child_name("ns2", &apex), self.addr()));
        }

        let n_data = self.rng.random_range(1..=self.spec.max_data_names);
        let mut data_names = vec![(
            child_name("www", &apex),
            self.data_ttls.sample(&mut self.rng),
        )];
        for k in 1..n_data {
            data_names.push((
                child_name(&format!("host{k}"), &apex),
                self.data_ttls.sample(&mut self.rng),
            ));
        }
        let mut cnames = Vec::new();
        if self.rng.random::<f64>() < self.spec.cname_fraction {
            cnames.push((
                child_name("web", &apex),
                data_names[0].0.clone(),
                self.data_ttls.sample(&mut self.rng),
            ));
        }
        let has_mx = self.rng.random::<f64>() < self.spec.mx_fraction;
        // Only consume randomness when signing is enabled, so unsigned
        // universes (the paper's 2006 DNS) are bit-identical to those
        // generated before the DNSSEC extension existed.
        let dnskey = if self.spec.signed_fraction > 0.0 {
            (self.rng.random::<f64>() < self.spec.signed_fraction).then(|| {
                let key_tag: u16 = self.rng.random();
                let public_key: u32 = self.rng.random();
                (key_tag, public_key)
            })
        } else {
            None
        };
        ZoneSpec {
            apex,
            parent: Some(parent),
            ns,
            infra_ttl,
            data_names,
            cnames,
            has_mx,
            dnskey,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Universe {
        UniverseSpec::small().build(7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.zone_count(), b.zone_count());
        for (za, zb) in a.zones().iter().zip(b.zones()) {
            assert_eq!(za.apex, zb.apex);
            assert_eq!(za.ns, zb.ns);
            assert_eq!(za.infra_ttl, zb.infra_ttl);
        }
    }

    #[test]
    fn tree_structure_is_consistent() {
        let u = small();
        for spec in u.zones() {
            if let Some(parent) = &spec.parent {
                assert!(spec.apex.is_proper_subdomain_of(parent));
                assert!(u.get(parent).is_some(), "parent {parent} missing");
            } else {
                assert!(spec.apex.is_root());
            }
        }
    }

    #[test]
    fn zone_counts_match_spec() {
        let spec = UniverseSpec::small();
        let u = spec.build(7);
        // Root + TLDs + SLDs + deep zones.
        assert!(u.zone_count() >= 1 + spec.tld_count + spec.sld_count);
        assert_eq!(u.root_and_tld_apexes().len(), 1 + spec.tld_count);
    }

    #[test]
    fn every_zone_has_servers_and_data_zones_have_names() {
        let u = small();
        for spec in u.zones() {
            assert!(!spec.ns.is_empty(), "{} has no servers", spec.apex);
            if spec.apex.label_count() >= 2 {
                assert!(!spec.data_names.is_empty());
            }
        }
    }

    #[test]
    fn some_zones_are_out_of_bailiwick_hosted() {
        let u = small();
        let oob = u
            .zones()
            .iter()
            .filter(|z| z.ns.iter().any(|(n, _)| !n.is_subdomain_of(&z.apex)))
            .count();
        assert!(oob > 0, "expected some out-of-bailiwick hosting");
        // And shared servers serve multiple zones.
        let assignments = u.server_assignments();
        assert!(assignments.values().any(|zones| zones.len() > 1));
    }

    #[test]
    fn built_zones_delegate_their_children() {
        let u = small();
        let root_zone = u.build_zone(u.get(&Name::root()).unwrap());
        assert_eq!(
            root_zone.delegations().count(),
            u.children_of(&Name::root()).count()
        );
        // Pick a TLD with children and check glue presence for
        // in-bailiwick servers.
        let tld = u
            .zones()
            .iter()
            .find(|z| z.apex.label_count() == 1 && u.children_of(&z.apex).next().is_some())
            .expect("some TLD has children");
        let tld_zone = u.build_zone(tld);
        for d in tld_zone.delegations() {
            for (n, _) in d.glue.iter().map(|g| (g.name().clone(), ())) {
                assert!(n.is_subdomain_of(&d.child));
            }
        }
    }

    #[test]
    fn zone_of_resolves_names_to_owners() {
        let u = small();
        let spec = u.zones().iter().find(|z| !z.data_names.is_empty()).unwrap();
        let (name, _) = &spec.data_names[0];
        assert_eq!(u.zone_of(name).unwrap().apex, spec.apex);
    }

    #[test]
    fn query_targets_cover_all_data_names() {
        let u = small();
        let targets = u.query_targets();
        let total_names: usize = u
            .zones()
            .iter()
            .map(|z| z.data_names.len() + z.cnames.len() + usize::from(z.has_mx))
            .sum();
        assert_eq!(targets.len(), total_names);
    }

    #[test]
    fn infra_ttls_follow_the_reported_distribution() {
        let u = UniverseSpec::standard().build(11);
        let slds: Vec<&ZoneSpec> = u
            .zones()
            .iter()
            .filter(|z| z.apex.label_count() >= 2)
            .collect();
        let short = slds
            .iter()
            .filter(|z| z.infra_ttl <= Ttl::from_hours(12))
            .count();
        let frac = short as f64 / slds.len() as f64;
        assert!(frac > 0.6, "most IRR TTLs should be <= 12h, got {frac}");
    }

    #[test]
    fn delegation_bombs_leave_query_targets_unchanged() {
        let base = small();
        let bombed = base.with_delegation_bombs(NxnsBombSpec::new(64, 12));
        assert_eq!(bombed.zone_count(), base.zone_count() + 64);
        // Trace generation draws from query_targets: identical targets
        // mean traces over the bombed universe are byte-identical.
        assert_eq!(bombed.query_targets(), base.query_targets());
        assert!(base.delegation_bomb_apexes().is_empty());
        assert_eq!(bombed.delegation_bomb_apexes().len(), 64);
    }

    #[test]
    fn delegation_bombs_are_glueless_out_of_zone_referrals() {
        let u = small().with_delegation_bombs(NxnsBombSpec::new(8, 10));
        for apex in u.delegation_bomb_apexes() {
            let bomb = u.get(&apex).unwrap();
            assert_eq!(bomb.ns.len(), 10);
            // Every server name is out of bailiwick and nonexistent
            // (the generator never emits nx* labels).
            for (n, _) in &bomb.ns {
                assert!(!n.is_subdomain_of(&apex));
                assert!(u.zone_of(n).is_some());
                let owner = u.zone_of(n).unwrap();
                assert!(owner.query_names().all(|q| q != n));
                assert!(owner.ns.iter().all(|(sn, _)| sn != n));
            }
            // The parent's delegation to the bomb carries zero glue.
            let parent = u.get(bomb.parent.as_ref().unwrap()).unwrap();
            let parent_zone = u.build_zone(parent);
            let d = parent_zone
                .delegations()
                .find(|d| d.child == apex)
                .expect("parent delegates the bomb");
            assert_eq!(d.ns_names.len(), 10);
            assert!(d.glue.is_empty(), "bomb referrals must be glueless");
        }
    }

    #[test]
    fn delegation_bomb_injection_is_deterministic() {
        let spec = NxnsBombSpec::new(16, 6);
        let a = small().with_delegation_bombs(spec);
        let b = small().with_delegation_bombs(spec);
        for (za, zb) in a.zones().iter().zip(b.zones()) {
            assert_eq!(za.apex, zb.apex);
            assert_eq!(za.ns, zb.ns);
        }
    }

    #[test]
    fn server_addresses_are_unique_per_generated_server() {
        let u = small();
        // ns1 addresses are allocated sequentially — never colliding with
        // each other or with root/TLD servers.
        let mut seen = std::collections::HashSet::new();
        for z in u.zones() {
            for (n, a) in &z.ns {
                if n.is_subdomain_of(&z.apex) {
                    assert!(seen.insert(*a) || u.server_assignments()[a].len() > 1);
                }
            }
        }
    }
}
