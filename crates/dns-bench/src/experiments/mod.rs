//! One function per paper artifact (tables and figures).
//!
//! Each function prints the paper-shaped table(s) on stdout and writes a
//! CSV into [`crate::output_dir`]. The `src/bin/` binaries are thin
//! wrappers; `all_experiments` chains everything over one shared [`Lab`].

use crate::{emit, pct, ratio, Lab};
use dns_core::{SimDuration, SimTime, Ttl};
use dns_resolver::{DefensePolicy, RenewalPolicy, StalePolicy};
use dns_sim::experiment::{
    AttackOutcome, OverheadOutcome, Scheme, ATTACK_START_DAY, POLICY_FIGURE_DURATION,
};
use dns_sim::gap::GapAnalysis;
use dns_sim::{AdversarySpec, ExperimentSpec, ServerFarm, SweepOutcome};
use dns_stats::{AsciiChart, Table};
use dns_trace::{NxnsBombSpec, TraceSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Attack onset shared by every failure experiment: start of day 7.
pub fn attack_start() -> SimTime {
    SimTime::from_days(ATTACK_START_DAY)
}

/// The four attack durations of Figures 4–5.
pub fn durations_hours() -> [u64; 4] {
    [3, 6, 12, 24]
}

impl Lab {
    /// Runs one engine sweep over `names` × `group`, reusing the lab's
    /// farm cache and recording the sweep's manifest. Traces enter the
    /// sweep as streamed sources ([`ExperimentSpec::stream_trace`]):
    /// units replay them straight from the seeded generator — byte-
    /// identical to the materialized trace (same scale and seed as
    /// [`crate::build_trace`]) at `O(zones)` replay memory, so figure
    /// binaries never materialize a trace they only sweep over.
    fn sweep<F>(
        &mut self,
        specs: &[TraceSpec],
        names: &[&'static str],
        group: &[Scheme],
        configure: F,
    ) -> SweepOutcome
    where
        F: for<'s> FnOnce(ExperimentSpec<'s>) -> ExperimentSpec<'s>,
    {
        let farms: Vec<(Option<Ttl>, Arc<ServerFarm>)> = group
            .iter()
            .map(|s| (s.long_ttl, self.farm(s.long_ttl)))
            .collect();
        let mut espec = ExperimentSpec::new(&self.universe).schemes(group.iter().copied());
        for name in names {
            let spec = specs
                .iter()
                .find(|s| s.name == *name)
                .expect("grouped name comes from specs");
            let index = spec.name.as_bytes().last().copied().unwrap_or(0) as u64;
            espec = espec.stream_trace(
                spec.scaled(crate::scale().min(1.0)),
                crate::TRACE_SEED + index,
            );
        }
        for (ttl, farm) in farms {
            espec = espec.farm(ttl, farm);
        }
        let outcome = configure(espec).run();
        self.manifests.push(outcome.manifest.clone());
        outcome
    }

    /// Ensures every `(trace, scheme, duration)` attack cell is memoised,
    /// batching the missing cells into as few parallel engine sweeps as
    /// possible: schemes missing the same trace set share one sweep, so
    /// the engine fans full trace × scheme products over its workers.
    pub fn attack_grid(
        &mut self,
        specs: &[TraceSpec],
        schemes: &[Scheme],
        durations: &[SimDuration],
    ) {
        let mut groups: BTreeMap<Vec<&'static str>, Vec<Scheme>> = BTreeMap::new();
        for scheme in schemes {
            let missing: Vec<&'static str> = specs
                .iter()
                .filter(|spec| {
                    durations
                        .iter()
                        .any(|d| !self.attack_memo.contains_key(&memo_key(spec, scheme, *d)))
                })
                .map(|spec| spec.name)
                .collect();
            if !missing.is_empty() {
                groups.entry(missing).or_default().push(*scheme);
            }
        }
        for (names, group) in groups {
            let outcome = self.sweep(specs, &names, &group, |s| {
                s.attack(attack_start(), durations)
            });
            for o in outcome.attacks {
                let name = static_name(specs, &o.trace);
                self.attack_memo
                    .insert((o.scheme.clone(), name, o.duration.as_secs()), o);
            }
        }
    }

    /// Ensures every `(trace, scheme)` overhead cell is memoised, batched
    /// like [`Lab::attack_grid`].
    pub fn overhead_grid(
        &mut self,
        specs: &[TraceSpec],
        schemes: &[Scheme],
        sample_every: SimDuration,
    ) {
        let mut groups: BTreeMap<Vec<&'static str>, Vec<Scheme>> = BTreeMap::new();
        for scheme in schemes {
            let missing: Vec<&'static str> = specs
                .iter()
                .filter(|spec| {
                    !self
                        .overhead_memo
                        .contains_key(&(scheme.label(), spec.name))
                })
                .map(|spec| spec.name)
                .collect();
            if !missing.is_empty() {
                groups.entry(missing).or_default().push(*scheme);
            }
        }
        for (names, group) in groups {
            let outcome = self.sweep(specs, &names, &group, |s| s.overhead(sample_every));
            for o in outcome.overheads {
                let name = static_name(specs, &o.trace);
                self.overhead_memo.insert((o.scheme.clone(), name), o);
            }
        }
    }

    /// Memoised attack outcomes for one `(trace, scheme)` column across
    /// `durations`; delegates to [`Lab::attack_grid`], so repeated
    /// columns (e.g. the vanilla baseline) are simulated only once.
    pub fn attack_outcomes(
        &mut self,
        spec: &TraceSpec,
        scheme: Scheme,
        durations: &[SimDuration],
    ) -> Vec<AttackOutcome> {
        self.attack_grid(std::slice::from_ref(spec), &[scheme], durations);
        durations
            .iter()
            .map(|d| self.attack_memo[&memo_key(spec, &scheme, *d)].clone())
            .collect()
    }

    /// Memoised full-trace overhead run for Table 1 / Table 2 / Figure 12.
    pub fn overhead(
        &mut self,
        spec: &TraceSpec,
        scheme: Scheme,
        sample_every: SimDuration,
    ) -> OverheadOutcome {
        self.overhead_grid(std::slice::from_ref(spec), &[scheme], sample_every);
        self.overhead_memo[&(scheme.label(), spec.name)].clone()
    }

    /// Memoised Figure-3 gap analyses (vanilla full-trace replay), with
    /// any missing traces run as one parallel sweep.
    pub fn gap_analyses(&mut self, specs: &[TraceSpec]) -> Vec<GapAnalysis> {
        let missing: Vec<&'static str> = specs
            .iter()
            .filter(|s| !self.gap_memo.contains_key(s.name))
            .map(|s| s.name)
            .collect();
        if !missing.is_empty() {
            let outcome = self.sweep(specs, &missing, &[Scheme::vanilla()], |s| s.gaps());
            for g in outcome.gaps {
                let name = static_name(specs, &g.trace);
                self.gap_memo
                    .insert(name, GapAnalysis::from_samples(&g.samples));
            }
        }
        specs
            .iter()
            .map(|s| self.gap_memo[s.name].clone())
            .collect()
    }
}

fn memo_key(spec: &TraceSpec, scheme: &Scheme, d: SimDuration) -> (String, &'static str, u64) {
    (scheme.label(), spec.name, d.as_secs())
}

/// Maps an outcome's trace label back to the `&'static str` preset name
/// the memo tables are keyed by.
fn static_name(specs: &[TraceSpec], name: &str) -> &'static str {
    specs
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.name)
        .expect("outcome trace label comes from the sweep's specs")
}

// ---------------------------------------------------------------------
// Table 1 — trace statistics
// ---------------------------------------------------------------------

/// The cache-occupancy sampling interval shared by every overhead run
/// (Tables 1–2, Figure 12), so their memo entries are interchangeable.
pub fn overhead_sample() -> SimDuration {
    SimDuration::from_hours(6)
}

/// Regenerates Table 1: per-trace statistics, with "requests out"
/// measured by a vanilla replay (as the paper's caching servers did).
pub fn table1(lab: &mut Lab, specs: &[TraceSpec]) {
    // One parallel sweep covers every trace's vanilla replay; Table 2
    // and Figure 12 reuse the same memo entries.
    lab.overhead_grid(specs, &[Scheme::vanilla()], overhead_sample());
    let mut table = Table::new(vec![
        "Trace",
        "Duration",
        "Clients",
        "Requests In",
        "Requests Out",
        "Names",
        "Zones",
    ]);
    table.numeric();
    for spec in specs {
        lab.trace(spec);
        let stats = lab.traces[spec.name].stats();
        // "Requests out" is a property of a (vanilla) caching server in
        // front of the clients, so measure it by replay.
        let out = lab
            .overhead(spec, Scheme::vanilla(), overhead_sample())
            .metrics
            .queries_out;
        table.row(vec![
            stats.name.clone(),
            format!("{} Days", stats.days),
            stats.clients.to_string(),
            stats.requests_in.to_string(),
            out.to_string(),
            stats.distinct_names.to_string(),
            stats.distinct_zones.to_string(),
        ]);
    }
    emit("Table 1: DNS trace statistics", "table1", &table);
}

// ---------------------------------------------------------------------
// Figure 3 — time-gap CDFs
// ---------------------------------------------------------------------

/// Regenerates Figure 3: CDFs of the gap between an infrastructure
/// record's expiry and the next query to its zone — absolute (days) and
/// relative (fraction of the zone's IRR TTL).
pub fn fig3(lab: &mut Lab, specs: &[TraceSpec]) {
    let mut summary = Table::new(vec![
        "Trace",
        "Gaps",
        "P50 (days)",
        "P90 (days)",
        "<=1 day %",
        "<=5 days %",
        "P50 (xTTL)",
        "P90 (xTTL)",
    ]);
    summary.numeric();
    let mut curves = Table::new(vec!["Trace", "Kind", "Value", "CDF"]);
    let analyses = lab.gap_analyses(specs);
    for (spec, analysis) in specs.iter().zip(&analyses) {
        summary.row(vec![
            spec.name.to_string(),
            analysis.samples.to_string(),
            format!("{:.3}", analysis.absolute_days.quantile(0.5).unwrap_or(0.0)),
            format!("{:.3}", analysis.absolute_days.quantile(0.9).unwrap_or(0.0)),
            pct(analysis.absolute_days.fraction_at_or_below(1.0) * 100.0),
            pct(analysis.absolute_days.fraction_at_or_below(5.0) * 100.0),
            format!(
                "{:.3}",
                analysis.fraction_of_ttl.quantile(0.5).unwrap_or(0.0)
            ),
            format!(
                "{:.3}",
                analysis.fraction_of_ttl.quantile(0.9).unwrap_or(0.0)
            ),
        ]);
        for (value, cdf) in analysis.absolute_days.curve(64) {
            curves.row(vec![
                spec.name.to_string(),
                "days".to_string(),
                format!("{value:.4}"),
                format!("{cdf:.4}"),
            ]);
        }
        for (value, cdf) in analysis.fraction_of_ttl.curve(64) {
            curves.row(vec![
                spec.name.to_string(),
                "xTTL".to_string(),
                format!("{value:.4}"),
                format!("{cdf:.4}"),
            ]);
        }
    }
    emit(
        "Figure 3: time-gap duration summary",
        "fig3_summary",
        &summary,
    );
    emit("Figure 3: time-gap CDF curves", "fig3_curves", &curves);

    // Terminal rendition of the upper plot (absolute gaps, first trace).
    if let Some(spec) = specs.first() {
        let points: Vec<(f64, f64)> = curves_points_for(&curves, spec.name, "days");
        if !points.is_empty() {
            let mut chart = AsciiChart::new(64, 12);
            chart.series(
                format!("{} gap CDF (days → fraction)", spec.name),
                '*',
                points,
            );
            println!("{}", chart.render());
        }
    }
}

/// Extracts `(value, cdf)` points for one (trace, kind) series from the
/// Figure-3 curve table.
fn curves_points_for(curves: &Table, trace: &str, kind: &str) -> Vec<(f64, f64)> {
    curves
        .rows()
        .iter()
        .filter(|r| r[0] == trace && r[1] == kind)
        .filter_map(|r| Some((r[2].parse().ok()?, r[3].parse().ok()?)))
        .collect()
}

// ---------------------------------------------------------------------
// Figures 4–5 — failure vs attack duration
// ---------------------------------------------------------------------

/// Emits the two failure tables (SR-level and CS-level) for a scheme
/// evaluated across attack durations — the shape of Figures 4 and 5.
fn duration_figure(lab: &mut Lab, specs: &[TraceSpec], scheme: Scheme, figure: &str, stem: &str) {
    let durations: Vec<SimDuration> = durations_hours()
        .iter()
        .map(|&h| SimDuration::from_hours(h))
        .collect();
    // All traces in one parallel sweep before the per-row reads below.
    lab.attack_grid(specs, &[scheme], &durations);
    let mut headers = vec!["Trace".to_string()];
    headers.extend(durations_hours().iter().map(|h| format!("{h} Hours")));

    let mut sr = Table::new(headers.clone());
    let mut cs = Table::new(headers);
    sr.numeric();
    cs.numeric();
    for spec in specs {
        let outcomes = lab.attack_outcomes(spec, scheme, &durations);
        let mut sr_row = vec![spec.name.to_string()];
        let mut cs_row = vec![spec.name.to_string()];
        for o in &outcomes {
            sr_row.push(pct(o.sr_failed_pct));
            cs_row.push(pct(o.cs_failed_pct));
        }
        sr.row(sr_row);
        cs.row(cs_row);
    }
    emit(
        &format!("{figure}: % failed queries from SRs ({})", scheme.label()),
        &format!("{stem}_sr"),
        &sr,
    );
    emit(
        &format!("{figure}: % failed queries from CSs ({})", scheme.label()),
        &format!("{stem}_cs"),
        &cs,
    );
}

/// Regenerates Figure 4 (vanilla DNS under root+TLD attack).
pub fn fig4(lab: &mut Lab, specs: &[TraceSpec]) {
    duration_figure(lab, specs, Scheme::vanilla(), "Figure 4", "fig4");
}

/// Regenerates Figure 5 (TTL refresh).
pub fn fig5(lab: &mut Lab, specs: &[TraceSpec]) {
    duration_figure(lab, specs, Scheme::refresh(), "Figure 5", "fig5");
}

// ---------------------------------------------------------------------
// Figures 6–9 — renewal policies
// ---------------------------------------------------------------------

/// Emits a policy-comparison figure: vanilla vs refresh+renewal at
/// credits 1/3/5 under the 6-hour attack (the shape of Figures 6–9).
fn renewal_figure(
    lab: &mut Lab,
    specs: &[TraceSpec],
    policy: fn(u32) -> RenewalPolicy,
    figure: &str,
    stem: &str,
) {
    let credits = [1u32, 3, 5];
    let schemes: Vec<(String, Scheme)> = std::iter::once(("DNS".to_string(), Scheme::vanilla()))
        .chain(credits.iter().map(|&c| {
            let p = policy(c);
            (p.label(), Scheme::renewal(p))
        }))
        .collect();
    columns_figure(lab, specs, &schemes, figure, stem);
}

/// Shared emitter for figures whose columns are schemes at the fixed
/// 6-hour attack (Figures 6–11).
fn columns_figure(
    lab: &mut Lab,
    specs: &[TraceSpec],
    schemes: &[(String, Scheme)],
    figure: &str,
    stem: &str,
) {
    let durations = [POLICY_FIGURE_DURATION];
    // Full trace × scheme product in one parallel sweep.
    let scheme_list: Vec<Scheme> = schemes.iter().map(|(_, s)| *s).collect();
    lab.attack_grid(specs, &scheme_list, &durations);
    let mut headers = vec!["Trace".to_string()];
    headers.extend(schemes.iter().map(|(label, _)| label.clone()));
    let mut sr = Table::new(headers.clone());
    let mut cs = Table::new(headers);
    sr.numeric();
    cs.numeric();
    for spec in specs {
        let mut sr_row = vec![spec.name.to_string()];
        let mut cs_row = vec![spec.name.to_string()];
        for (_, scheme) in schemes {
            let o = &lab.attack_outcomes(spec, *scheme, &durations)[0];
            sr_row.push(pct(o.sr_failed_pct));
            cs_row.push(pct(o.cs_failed_pct));
        }
        sr.row(sr_row);
        cs.row(cs_row);
    }
    emit(
        &format!("{figure}: % failed queries from SRs (6h attack)"),
        &format!("{stem}_sr"),
        &sr,
    );
    emit(
        &format!("{figure}: % failed queries from CSs (6h attack)"),
        &format!("{stem}_cs"),
        &cs,
    );
}

/// Regenerates Figure 6 (TTL refresh + LRU renewal).
pub fn fig6(lab: &mut Lab, specs: &[TraceSpec]) {
    renewal_figure(lab, specs, RenewalPolicy::lru, "Figure 6", "fig6");
}

/// Regenerates Figure 7 (TTL refresh + LFU renewal).
pub fn fig7(lab: &mut Lab, specs: &[TraceSpec]) {
    renewal_figure(lab, specs, RenewalPolicy::lfu, "Figure 7", "fig7");
}

/// Regenerates Figure 8 (TTL refresh + adaptive-LRU renewal).
pub fn fig8(lab: &mut Lab, specs: &[TraceSpec]) {
    renewal_figure(lab, specs, RenewalPolicy::adaptive_lru, "Figure 8", "fig8");
}

/// Regenerates Figure 9 (TTL refresh + adaptive-LFU renewal).
pub fn fig9(lab: &mut Lab, specs: &[TraceSpec]) {
    renewal_figure(lab, specs, RenewalPolicy::adaptive_lfu, "Figure 9", "fig9");
}

// ---------------------------------------------------------------------
// Figures 10–11 — long TTL
// ---------------------------------------------------------------------

/// The long-TTL values evaluated by Figures 10–11 (days).
pub fn long_ttl_days() -> [u32; 4] {
    [1, 3, 5, 7]
}

/// Regenerates Figure 10 (TTL refresh + long TTL).
pub fn fig10(lab: &mut Lab, specs: &[TraceSpec]) {
    let schemes: Vec<(String, Scheme)> = std::iter::once(("DNS".to_string(), Scheme::vanilla()))
        .chain(long_ttl_days().iter().map(|&d| {
            (
                format!("{d} Day TTL"),
                Scheme::refresh_long_ttl(Ttl::from_days(d)),
            )
        }))
        .collect();
    columns_figure(lab, specs, &schemes, "Figure 10", "fig10");
}

/// Regenerates Figure 11 (refresh + A-LFU renewal + long TTL).
pub fn fig11(lab: &mut Lab, specs: &[TraceSpec]) {
    let policy = RenewalPolicy::adaptive_lfu(3);
    let schemes: Vec<(String, Scheme)> = std::iter::once(("DNS".to_string(), Scheme::vanilla()))
        .chain(long_ttl_days().iter().map(|&d| {
            (
                format!("{d} Day TTL"),
                Scheme::combined(policy, Ttl::from_days(d)),
            )
        }))
        .collect();
    columns_figure(lab, specs, &schemes, "Figure 11", "fig11");
}

// ---------------------------------------------------------------------
// Table 2 — message and memory overhead
// ---------------------------------------------------------------------

/// The schemes Table 2 compares against vanilla.
pub fn table2_schemes() -> Vec<(String, Scheme)> {
    vec![
        ("Refresh".to_string(), Scheme::refresh()),
        ("LRU_3".to_string(), Scheme::renewal(RenewalPolicy::lru(3))),
        ("LFU_3".to_string(), Scheme::renewal(RenewalPolicy::lfu(3))),
        (
            "A-LRU_3".to_string(),
            Scheme::renewal(RenewalPolicy::adaptive_lru(3)),
        ),
        (
            "A-LFU_3".to_string(),
            Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),
        ),
        (
            "Long-TTL 7d".to_string(),
            Scheme::refresh_long_ttl(Ttl::from_days(7)),
        ),
        (
            "Combination".to_string(),
            Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)),
        ),
    ]
}

/// Regenerates Table 2: % change in generated DNS messages vs vanilla,
/// plus cached-zone and cached-record multipliers, over `spec`.
pub fn table2(lab: &mut Lab, spec: &TraceSpec) {
    let sample = overhead_sample();
    let mut all: Vec<Scheme> = vec![Scheme::vanilla()];
    all.extend(table2_schemes().into_iter().map(|(_, s)| s));
    lab.overhead_grid(std::slice::from_ref(spec), &all, sample);
    let vanilla = lab.overhead(spec, Scheme::vanilla(), sample);
    let mut table = Table::new(vec![
        "Scheme",
        "Msg Overhead %",
        "Renewals",
        "Cached Zones",
        "Cached Records",
    ]);
    table.numeric();
    table.row(vec![
        "DNS (baseline)".to_string(),
        "0.00".to_string(),
        "0".to_string(),
        ratio(1.0),
        ratio(1.0),
    ]);
    for (label, scheme) in table2_schemes() {
        let out = lab.overhead(spec, scheme, sample);
        table.row(vec![
            label,
            format!("{:+.2}", out.message_overhead_pct(&vanilla)),
            out.metrics.renewals_sent.to_string(),
            ratio(out.zone_ratio(&vanilla)),
            ratio(out.record_ratio(&vanilla)),
        ]);
    }
    emit(
        &format!("Table 2: message and memory overhead ({})", spec.name),
        "table2",
        &table,
    );
}

// ---------------------------------------------------------------------
// Figure 12 — memory overhead over time
// ---------------------------------------------------------------------

/// The schemes plotted in Figure 12.
pub fn fig12_schemes() -> Vec<(String, Scheme)> {
    vec![
        ("DNS".to_string(), Scheme::vanilla()),
        ("LRU_5".to_string(), Scheme::renewal(RenewalPolicy::lru(5))),
        ("LFU_5".to_string(), Scheme::renewal(RenewalPolicy::lfu(5))),
        (
            "A-LRU_5".to_string(),
            Scheme::renewal(RenewalPolicy::adaptive_lru(5)),
        ),
        (
            "A-LFU_5".to_string(),
            Scheme::renewal(RenewalPolicy::adaptive_lfu(5)),
        ),
        (
            "Long-TTL 7d".to_string(),
            Scheme::refresh_long_ttl(Ttl::from_days(7)),
        ),
        (
            "Combination".to_string(),
            Scheme::combined(RenewalPolicy::adaptive_lfu(3), Ttl::from_days(3)),
        ),
    ]
}

/// Regenerates Figure 12: cached zones and records over time for each
/// scheme, on the one-month trace.
pub fn fig12(lab: &mut Lab, spec: &TraceSpec) {
    let sample = overhead_sample();
    let schemes: Vec<Scheme> = fig12_schemes().into_iter().map(|(_, s)| s).collect();
    lab.overhead_grid(std::slice::from_ref(spec), &schemes, sample);
    let mut series = Table::new(vec!["Scheme", "Day", "Zones", "Records"]);
    let mut summary = Table::new(vec!["Scheme", "Mean Zones", "Mean Records", "Peak Records"]);
    summary.numeric();
    let mut chart = AsciiChart::new(72, 14);
    let glyphs = ['.', '1', '2', '3', '4', 'L', 'C'];
    let mut glyph_iter = glyphs.iter();
    for (label, scheme) in fig12_schemes() {
        let out_for_chart = lab.overhead(spec, scheme, sample);
        if let Some(&glyph) = glyph_iter.next() {
            chart.series(
                format!("{label} (records)"),
                glyph,
                out_for_chart
                    .occupancy
                    .iter()
                    .map(|s| (s.at.as_secs() as f64 / 86_400.0, s.total_records() as f64))
                    .collect(),
            );
        }
    }
    for (label, scheme) in fig12_schemes() {
        let out = lab.overhead(spec, scheme, sample);
        for s in &out.occupancy {
            series.row(vec![
                label.clone(),
                format!("{:.2}", s.at.as_secs() as f64 / 86_400.0),
                s.zones.to_string(),
                s.total_records().to_string(),
            ]);
        }
        let peak = out
            .occupancy
            .iter()
            .map(OccupancySampleExt::total)
            .max()
            .unwrap_or(0);
        summary.row(vec![
            label,
            format!("{:.0}", out.mean_zones()),
            format!("{:.0}", out.mean_records()),
            peak.to_string(),
        ]);
    }
    emit(
        &format!("Figure 12: cache occupancy summary ({})", spec.name),
        "fig12_summary",
        &summary,
    );
    emit(
        &format!("Figure 12: occupancy time series ({})", spec.name),
        "fig12_series",
        &series,
    );
    println!("{}", chart.render());
}

/// Helper trait so the max() above reads clearly.
trait OccupancySampleExt {
    fn total(&self) -> usize;
}

impl OccupancySampleExt for dns_resolver::OccupancySample {
    fn total(&self) -> usize {
        self.total_records()
    }
}

// ---------------------------------------------------------------------
// Adversarial survival — NXNS delegation bombs and water torture
// ---------------------------------------------------------------------

/// Attack rate of the adversarial sweeps, in queries per virtual second.
pub fn adversarial_qps() -> u32 {
    2
}

/// Attack-window length of the adversarial sweeps.
pub fn adversarial_window() -> SimDuration {
    SimDuration::from_mins(10)
}

/// The fully hardened defense policy the head-to-head compares against
/// each undefended scheme.
pub fn hardened_defense() -> DefensePolicy {
    DefensePolicy {
        max_ns_fetch: Some(2),
        neg_cache_max_entries: Some(512),
        ..DefensePolicy::off()
    }
}

/// Regenerates the adversarial survival head-to-head: the paper's
/// mitigation schemes (vanilla, refresh, refresh+renewal), each with and
/// without resolver flood defenses, under an NXNSAttack delegation-bomb
/// flood and a water-torture random-subdomain flood — plus a MaxFetch(k)
/// knob curve on vanilla. One row per (scheme, adversary): amplification
/// (extra upstream queries per attack query), legitimate failure cost in
/// percentage points versus an attack-free baseline fork, and the defense
/// counters.
pub fn adversarial(lab: &mut Lab, spec: &TraceSpec) {
    let qps = adversarial_qps();
    let window = adversarial_window();
    // One cold bomb per attack query: negative caching makes repeat hits
    // on a bomb cheap, so amplification is only sustained on fresh bombs.
    let bombs = (u64::from(qps) * window.as_secs()) as usize;
    let universe = lab
        .universe()
        .with_delegation_bombs(NxnsBombSpec::new(bombs, 24));

    let mut schemes = vec![Scheme::vanilla()];
    // MaxFetch(k) knob curve on vanilla.
    for k in [1u32, 2, 4] {
        schemes.push(Scheme::vanilla().with_defense(DefensePolicy {
            max_ns_fetch: Some(k),
            ..DefensePolicy::off()
        }));
    }
    // Paper mitigations, undefended and fully hardened.
    schemes.push(Scheme::vanilla().with_defense(hardened_defense()));
    for base in [
        Scheme::refresh(),
        Scheme::renewal(RenewalPolicy::adaptive_lfu(3)),
    ] {
        schemes.push(base);
        schemes.push(base.with_defense(hardened_defense()));
    }

    let index = spec.name.as_bytes().last().copied().unwrap_or(0) as u64;
    let outcome = ExperimentSpec::new(&universe)
        .stream_trace(
            spec.scaled(crate::scale().min(1.0)),
            crate::TRACE_SEED + index,
        )
        .schemes(schemes)
        .adversarial(AdversarySpec::nxns(qps), attack_start(), window)
        .adversarial(
            AdversarySpec::water_torture(8, qps, 9),
            attack_start(),
            window,
        )
        .run();
    lab.record_manifest(outcome.manifest.clone());

    let mut table = Table::new(vec![
        "Adversary",
        "Scheme",
        "Attack Q",
        "Amplification",
        "Base Upstream",
        "Attacked Upstream",
        "Legit Fail %",
        "Delta pp",
        "Clamped",
        "Suppressed",
        "Neg Evict",
    ]);
    table.numeric();
    for o in &outcome.adversarial {
        table.row(vec![
            o.adversary.clone(),
            o.scheme.clone(),
            o.attack_queries.to_string(),
            ratio(o.amplification()),
            o.base_upstream.to_string(),
            o.attacked_upstream.to_string(),
            pct(o.legit_failed_pct),
            format!("{:+.2}", o.legit_failed_delta_pct()),
            o.fetches_clamped.to_string(),
            o.flood_suppressed.to_string(),
            o.neg_evictions_pressure.to_string(),
        ]);
    }
    emit(
        &format!(
            "Adversarial survival: defenses vs NXNS + water torture ({})",
            spec.name
        ),
        "adversarial",
        &table,
    );
}

// ---------------------------------------------------------------------
// Serve-stale head-to-head — RFC 8767 vs the paper's mitigations
// ---------------------------------------------------------------------

/// The serve-stale window of the stale head-to-head (RFC 8767 suggests
/// 1–3 days; we use one day).
pub fn stale_window() -> SimDuration {
    SimDuration::from_days(1)
}

/// Serve-stale only: expired answers stay servable for [`stale_window`].
pub fn serve_stale_policy() -> StalePolicy {
    StalePolicy {
        max_stale: Some(stale_window()),
        ..StalePolicy::off()
    }
}

/// Proactive refresh only: renew hot names at 80% of TTL elapsed.
pub fn proactive_policy() -> StalePolicy {
    StalePolicy {
        proactive_percent: Some(80),
        ..StalePolicy::off()
    }
}

/// Prefetch only: learn per-name inter-arrival after 3 samples.
pub fn prefetch_policy() -> StalePolicy {
    StalePolicy {
        prefetch_min_samples: Some(3),
        ..StalePolicy::off()
    }
}

/// Every stale knob on at once.
pub fn full_stale_policy() -> StalePolicy {
    StalePolicy {
        max_stale: Some(stale_window()),
        proactive_percent: Some(80),
        prefetch_min_samples: Some(3),
    }
}

/// Key numbers from the serve-stale head-to-head; the `stale` binary
/// exports them as `BENCH_stale.json` (the tracked trajectory ci.sh
/// gates on).
#[derive(Debug, Clone)]
pub struct StaleSummary {
    /// SR failure % of plain vanilla during the 6h blackout.
    pub vanilla_sr_failed_pct: f64,
    /// SR failure % of vanilla + serve-stale during the same blackout.
    pub stale_sr_failed_pct: f64,
    /// Stale serves counted in the vanilla attack window (must be 0).
    pub vanilla_stale_served: u64,
    /// Stale serves counted in the serve-stale attack window.
    pub stale_served: u64,
    /// Stale candidates too old to serve in the serve-stale window.
    pub stale_expired_unserved: u64,
    /// Proactive refreshes issued over the proactive overhead replay.
    pub refresh_ahead: u64,
    /// Prefetches issued over the prefetch overhead replay.
    pub prefetch_issued: u64,
    /// Prefetches whose next query hit fresh cache.
    pub prefetch_hits: u64,
    /// Prefetches whose next query still missed.
    pub prefetch_wasted: u64,
    /// Message overhead % of serve-stale vs vanilla (no attack).
    pub stale_msg_overhead_pct: f64,
    /// Legitimate failure % of vanilla under water torture.
    pub torture_legit_failed_pct_vanilla: f64,
    /// Legitimate failure % of vanilla+stale under water torture.
    pub torture_legit_failed_pct_stale: f64,
}

/// Regenerates the serve-stale head-to-head: RFC 8767 serve-stale,
/// proactive refresh and learned prefetch against the paper's
/// mitigations (refresh, renewal, long TTL) on three grids — failure
/// fraction during the 6h root+TLD blackout, no-attack message
/// overhead, and legitimate-failure cost under a water-torture flood.
pub fn stale(lab: &mut Lab, spec: &TraceSpec) -> StaleSummary {
    let duration = POLICY_FIGURE_DURATION;
    let schemes: Vec<(&str, Scheme)> = vec![
        ("DNS", Scheme::vanilla()),
        ("Refresh", Scheme::refresh()),
        ("A-LFU_3", Scheme::renewal(RenewalPolicy::adaptive_lfu(3))),
        ("Long-TTL 3d", Scheme::refresh_long_ttl(Ttl::from_days(3))),
        ("Stale", Scheme::vanilla().with_stale(serve_stale_policy())),
        (
            "Refresh+Stale",
            Scheme::refresh().with_stale(serve_stale_policy()),
        ),
        (
            "Proactive80",
            Scheme::vanilla().with_stale(proactive_policy()),
        ),
        ("Prefetch3", Scheme::vanilla().with_stale(prefetch_policy())),
        ("All-on", Scheme::vanilla().with_stale(full_stale_policy())),
    ];

    // Failure-fraction grid: every scheme through the 6h blackout in one
    // parallel sweep; the window counters carry the stale telemetry.
    let scheme_list: Vec<Scheme> = schemes.iter().map(|(_, s)| *s).collect();
    lab.attack_grid(std::slice::from_ref(spec), &scheme_list, &[duration]);
    let mut failure = Table::new(vec![
        "Scheme",
        "SR Fail %",
        "CS Fail %",
        "Stale Served",
        "Stale Unserved",
        "Refresh Ahead",
        "Prefetch Issued",
    ]);
    failure.numeric();
    let mut attack_by_label: BTreeMap<&str, AttackOutcome> = BTreeMap::new();
    for (label, scheme) in &schemes {
        let o = lab.attack_outcomes(spec, *scheme, &[duration]).remove(0);
        failure.row(vec![
            (*label).to_string(),
            pct(o.sr_failed_pct),
            pct(o.cs_failed_pct),
            o.window.stale_served.to_string(),
            o.window.stale_expired_unserved.to_string(),
            o.window.refresh_ahead.to_string(),
            o.window.prefetch_issued.to_string(),
        ]);
        attack_by_label.insert(label, o);
    }
    emit(
        &format!("Serve-stale: failure under 6h blackout ({})", spec.name),
        "stale_failure",
        &failure,
    );

    // Overhead grid: no-attack replays for the stale axes vs vanilla —
    // the proactive/prefetch counters accumulate over the full trace.
    let overhead_schemes = [
        ("DNS", Scheme::vanilla()),
        ("Stale", Scheme::vanilla().with_stale(serve_stale_policy())),
        (
            "Proactive80",
            Scheme::vanilla().with_stale(proactive_policy()),
        ),
        ("Prefetch3", Scheme::vanilla().with_stale(prefetch_policy())),
    ];
    let overhead_list: Vec<Scheme> = overhead_schemes.iter().map(|(_, s)| *s).collect();
    lab.overhead_grid(
        std::slice::from_ref(spec),
        &overhead_list,
        overhead_sample(),
    );
    let vanilla_out = lab.overhead(spec, Scheme::vanilla(), overhead_sample());
    let mut over = Table::new(vec![
        "Scheme",
        "Msg Overhead %",
        "Refresh Ahead",
        "Prefetch Issued",
        "Prefetch Hits",
        "Prefetch Wasted",
    ]);
    over.numeric();
    let mut overhead_by_label: BTreeMap<&str, OverheadOutcome> = BTreeMap::new();
    for (label, scheme) in &overhead_schemes {
        let o = lab.overhead(spec, *scheme, overhead_sample());
        over.row(vec![
            (*label).to_string(),
            format!("{:+.2}", o.message_overhead_pct(&vanilla_out)),
            o.metrics.refresh_ahead.to_string(),
            o.metrics.prefetch_issued.to_string(),
            o.metrics.prefetch_hits.to_string(),
            o.metrics.prefetch_wasted.to_string(),
        ]);
        overhead_by_label.insert(label, o);
    }
    emit(
        &format!("Serve-stale: no-attack overhead ({})", spec.name),
        "stale_overhead",
        &over,
    );

    // Adversarial grid: does serve-stale change the water-torture cost?
    // (Random-subdomain floods never hit the stale window, so the
    // legitimate-failure cost should stay flat — the row proves it.)
    let qps = adversarial_qps();
    let window = adversarial_window();
    let index = spec.name.as_bytes().last().copied().unwrap_or(0) as u64;
    let adv_schemes = vec![
        Scheme::vanilla(),
        Scheme::vanilla().with_stale(serve_stale_policy()),
        Scheme::vanilla()
            .with_stale(serve_stale_policy())
            .with_defense(hardened_defense()),
    ];
    let outcome = ExperimentSpec::new(lab.universe())
        .stream_trace(
            spec.scaled(crate::scale().min(1.0)),
            crate::TRACE_SEED + index,
        )
        .schemes(adv_schemes)
        .adversarial(
            AdversarySpec::water_torture(8, qps, 9),
            attack_start(),
            window,
        )
        .run();
    lab.record_manifest(outcome.manifest.clone());
    let mut adv = Table::new(vec![
        "Adversary",
        "Scheme",
        "Amplification",
        "Legit Fail %",
        "Delta pp",
        "Stale Served",
        "Suppressed",
    ]);
    adv.numeric();
    for o in &outcome.adversarial {
        adv.row(vec![
            o.adversary.clone(),
            o.scheme.clone(),
            ratio(o.amplification()),
            pct(o.legit_failed_pct),
            format!("{:+.2}", o.legit_failed_delta_pct()),
            o.window.stale_served.to_string(),
            o.flood_suppressed.to_string(),
        ]);
    }
    emit(
        &format!("Serve-stale: water-torture cost ({})", spec.name),
        "stale_adversarial",
        &adv,
    );

    let vanilla_attack = &attack_by_label["DNS"];
    let stale_attack = &attack_by_label["Stale"];
    let proactive_over = &overhead_by_label["Proactive80"];
    let prefetch_over = &overhead_by_label["Prefetch3"];
    StaleSummary {
        vanilla_sr_failed_pct: vanilla_attack.sr_failed_pct,
        stale_sr_failed_pct: stale_attack.sr_failed_pct,
        vanilla_stale_served: vanilla_attack.window.stale_served,
        stale_served: stale_attack.window.stale_served,
        stale_expired_unserved: stale_attack.window.stale_expired_unserved,
        refresh_ahead: proactive_over.metrics.refresh_ahead,
        prefetch_issued: prefetch_over.metrics.prefetch_issued,
        prefetch_hits: prefetch_over.metrics.prefetch_hits,
        prefetch_wasted: prefetch_over.metrics.prefetch_wasted,
        stale_msg_overhead_pct: overhead_by_label["Stale"].message_overhead_pct(&vanilla_out),
        torture_legit_failed_pct_vanilla: outcome.adversarial[0].legit_failed_pct,
        torture_legit_failed_pct_stale: outcome.adversarial[1].legit_failed_pct,
    }
}

/// Runs the complete reproduction over one lab (all tables and figures).
pub fn all(lab: &mut Lab) {
    let weekly = TraceSpec::weekly();
    table1(lab, &TraceSpec::all());
    fig3(lab, &weekly);
    fig4(lab, &weekly);
    fig5(lab, &weekly);
    fig6(lab, &weekly);
    fig7(lab, &weekly);
    fig8(lab, &weekly);
    fig9(lab, &weekly);
    fig10(lab, &weekly);
    fig11(lab, &weekly);
    table2(lab, &TraceSpec::TRC1);
    fig12(lab, &TraceSpec::TRC6);
    adversarial(lab, &TraceSpec::TRC1);
    stale(lab, &TraceSpec::TRC1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_trace::UniverseSpec;

    fn tiny_lab() -> Lab {
        Lab::with_universe(UniverseSpec::small().build(7))
    }

    fn tiny_spec() -> TraceSpec {
        TraceSpec::demo().scaled(0.1)
    }

    #[test]
    fn attack_outcomes_are_memoised() {
        let mut lab = tiny_lab();
        let spec = tiny_spec();
        let d = [SimDuration::from_hours(6)];
        let first = lab.attack_outcomes(&spec, Scheme::vanilla(), &d);
        let again = lab.attack_outcomes(&spec, Scheme::vanilla(), &d);
        assert_eq!(first[0].sr_failed_pct, again[0].sr_failed_pct);
        assert_eq!(lab_memo_len(&lab), 1);
    }

    fn lab_memo_len(lab: &Lab) -> usize {
        lab.attack_memo.len()
    }

    #[test]
    fn duration_figure_smoke() {
        let mut lab = tiny_lab();
        let specs = [tiny_spec()];
        std::env::set_var("DNS_REPRO_OUT", std::env::temp_dir().join("dnsrepro-test"));
        fig4(&mut lab, &specs);
        // All four durations cached for vanilla.
        assert_eq!(lab.attack_memo.len(), 4);
    }

    #[test]
    fn adversarial_smoke() {
        let mut lab = tiny_lab();
        std::env::set_var("DNS_REPRO_OUT", std::env::temp_dir().join("dnsrepro-test"));
        adversarial(&mut lab, &tiny_spec());
        // One sweep recorded: 9 schemes × 2 adversaries.
        assert_eq!(lab.manifests.len(), 1);
        assert_eq!(lab.manifests[0].units.len(), 18);
        assert!(lab.manifests[0]
            .units
            .iter()
            .all(|u| u.kind == "adversarial"));
    }
}
