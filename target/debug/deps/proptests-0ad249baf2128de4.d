/root/repo/target/debug/deps/proptests-0ad249baf2128de4.d: crates/dns-resolver/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0ad249baf2128de4: crates/dns-resolver/tests/proptests.rs

crates/dns-resolver/tests/proptests.rs:
