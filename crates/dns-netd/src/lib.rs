//! Live UDP bindings for the DNS substrate.
//!
//! The simulator drives the same [`AuthServer`](dns_auth::AuthServer) and
//! [`CachingServer`](dns_resolver::CachingServer) types in virtual time;
//! this crate binds them to real sockets so the system can be *run*, not
//! just simulated:
//!
//! * [`Authd`] — an authoritative name-server daemon on a UDP socket,
//! * [`Resolved`] — a recursive caching-resolver daemon (a small worker
//!   pool with health reporting) whose upstream is the real network
//!   ([`UdpUpstream`]) and whose clock is wall time,
//! * [`FaultInjector`] — deterministic packet loss, delay and per-server
//!   blackout windows wrapped around any upstream: the simulator's
//!   attack model replayed on real sockets,
//! * [`client::query`] — a one-shot dig-like client.
//!
//! The `dns-playground` binary boots an entire miniature internet (root,
//! TLD and leaf authoritative daemons plus a recursive resolver) on
//! loopback and resolves names through it.
//!
//! # Example
//!
//! ```rust
//! use dns_netd::{client, Authd};
//! use dns_core::{RecordType, ResponseKind, Ttl, ZoneBuilder};
//! use std::net::Ipv4Addr;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let zone = ZoneBuilder::new("example.com".parse()?)
//!     .ns("ns1.example.com".parse()?, Ipv4Addr::LOCALHOST, Ttl::from_days(1))
//!     .a("www.example.com".parse()?, Ipv4Addr::new(192, 0, 2, 80), Ttl::from_hours(4))
//!     .build()?;
//! let mut server = dns_auth::AuthServer::new("ns1.example.com".parse()?, Ipv4Addr::LOCALHOST);
//! server.add_zone(zone);
//!
//! let authd = Authd::spawn(server, "127.0.0.1:0")?;
//! let resp = client::query(
//!     authd.addr(),
//!     &"www.example.com".parse()?,
//!     RecordType::A,
//!     Duration::from_millis(500),
//! )?;
//! assert_eq!(resp.kind(), ResponseKind::Answer);
//! authd.stop();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod authd;
pub mod client;
mod fault;
mod packetio;
pub mod playground;
mod resolved;
mod upstream;
mod wirecache;

pub use authd::Authd;
pub use fault::{FaultHandle, FaultInjector, FaultStats};
pub use packetio::{
    ChannelPacketIo, LoopbackHub, Packet, PacketBatch, PacketIo, UdpPacketIo, MAX_BATCH,
};
pub use resolved::{DaemonStats, Resolved, CHAOS_METRICS_NAME};
pub use upstream::UdpUpstream;
pub use wirecache::{fast_query, lowercase_key, FastQuery, WireCache, DEFAULT_WIRE_CACHE_BYTES};

/// The wall clock mapped into the simulator's time vocabulary: seconds
/// since the UNIX epoch.
pub fn wall_clock() -> dns_core::SimTime {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    dns_core::SimTime::from_secs(secs)
}
