//! Regenerates Figure 12 (memory overhead over time) of the DSN 2007 paper.
//! See DESIGN.md §4 for the experiment index.

use dns_bench::experiments::fig12;
use dns_bench::Lab;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    fig12(&mut lab, &TraceSpec::TRC6);
    lab.emit_manifest();
}
