/root/repo/target/debug/deps/dns_sim-ff93708952b98815.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libdns_sim-ff93708952b98815.rmeta: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs Cargo.toml

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/attack.rs:
crates/dns-sim/src/damage.rs:
crates/dns-sim/src/driver.rs:
crates/dns-sim/src/experiment.rs:
crates/dns-sim/src/farm.rs:
crates/dns-sim/src/gap.rs:
crates/dns-sim/src/network.rs:
crates/dns-sim/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
