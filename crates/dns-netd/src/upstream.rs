//! [`Upstream`] over real UDP sockets.

use dns_core::{wire, Message, SimTime};
use dns_resolver::Upstream;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::Duration;

/// Routes the resolver's upstream queries over real UDP.
///
/// The resolver addresses authoritative servers by IPv4 address; this
/// upstream completes them with a port (53 in production, an override for
/// loopback playgrounds where every daemon shares 127.0.0.1).
pub struct UdpUpstream {
    socket: UdpSocket,
    timeout: Duration,
    /// `(address → socket address)` mapping; loopback setups map the
    /// universe's synthetic addresses to local daemons on different ports.
    route: Box<dyn Fn(Ipv4Addr) -> SocketAddr + Send>,
}

impl std::fmt::Debug for UdpUpstream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpUpstream")
            .field("socket", &self.socket)
            .field("timeout", &self.timeout)
            .field("route", &"<fn>")
            .finish()
    }
}

impl UdpUpstream {
    /// An upstream that sends to `addr:53` for every server address.
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding the local socket.
    pub fn new(timeout: Duration) -> io::Result<UdpUpstream> {
        UdpUpstream::with_route(timeout, |ip| SocketAddr::from((ip, 53)))
    }

    /// An upstream with a custom address → socket mapping (loopback
    /// playgrounds map the universe's synthetic IPs to local ports).
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding the local socket.
    pub fn with_route(
        timeout: Duration,
        route: impl Fn(Ipv4Addr) -> SocketAddr + Send + 'static,
    ) -> io::Result<UdpUpstream> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(UdpUpstream {
            socket,
            timeout,
            route: Box::new(route),
        })
    }

    /// The configured per-query timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }
}

impl Upstream for UdpUpstream {
    fn query(&mut self, server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
        let target = (self.route)(server);
        let bytes = wire::encode(query).ok()?;
        self.socket.send_to(&bytes, target).ok()?;
        let mut buf = [0u8; wire::MAX_MESSAGE_LEN];
        // Bounded receive loop: ignore strays, stop at timeout.
        let deadline = std::time::Instant::now() + self.timeout;
        while std::time::Instant::now() < deadline {
            let Ok((len, from)) = self.socket.recv_from(&mut buf) else {
                return None; // timeout
            };
            if from != target {
                continue;
            }
            let Ok(resp) = wire::decode(&buf[..len]) else {
                continue;
            };
            if resp.header.id == query.header.id && resp.header.response {
                return Some(resp);
            }
        }
        None
    }
}
