/root/repo/target/debug/deps/proptests-80624d8f50539b37.d: crates/dns-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-80624d8f50539b37: crates/dns-sim/tests/proptests.rs

crates/dns-sim/tests/proptests.rs:
