/root/repo/target/debug/examples/wire_anatomy-89c0e0fd52912a99.d: examples/wire_anatomy.rs

/root/repo/target/debug/examples/wire_anatomy-89c0e0fd52912a99: examples/wire_anatomy.rs

examples/wire_anatomy.rs:
