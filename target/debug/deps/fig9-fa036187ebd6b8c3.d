/root/repo/target/debug/deps/fig9-fa036187ebd6b8c3.d: crates/dns-bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-fa036187ebd6b8c3.rmeta: crates/dns-bench/src/bin/fig9.rs Cargo.toml

crates/dns-bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
