/root/repo/target/debug/deps/adversarial-943d7c67f7cf74ef.d: crates/dns-resolver/tests/adversarial.rs Cargo.toml

/root/repo/target/debug/deps/libadversarial-943d7c67f7cf74ef.rmeta: crates/dns-resolver/tests/adversarial.rs Cargo.toml

crates/dns-resolver/tests/adversarial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
