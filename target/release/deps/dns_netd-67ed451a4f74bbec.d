/root/repo/target/release/deps/dns_netd-67ed451a4f74bbec.d: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/release/deps/libdns_netd-67ed451a4f74bbec.rlib: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

/root/repo/target/release/deps/libdns_netd-67ed451a4f74bbec.rmeta: crates/dns-netd/src/lib.rs crates/dns-netd/src/authd.rs crates/dns-netd/src/client.rs crates/dns-netd/src/playground.rs crates/dns-netd/src/resolved.rs crates/dns-netd/src/upstream.rs

crates/dns-netd/src/lib.rs:
crates/dns-netd/src/authd.rs:
crates/dns-netd/src/client.rs:
crates/dns-netd/src/playground.rs:
crates/dns-netd/src/resolved.rs:
crates/dns-netd/src/upstream.rs:
