/root/repo/target/debug/deps/trace_tool-ffc8dacd3f41e5c7.d: crates/dns-bench/src/bin/trace_tool.rs

/root/repo/target/debug/deps/trace_tool-ffc8dacd3f41e5c7: crates/dns-bench/src/bin/trace_tool.rs

crates/dns-bench/src/bin/trace_tool.rs:
