/root/repo/target/debug/deps/dnssec_universe-7c4e8a3aa8637c36.d: tests/dnssec_universe.rs

/root/repo/target/debug/deps/dnssec_universe-7c4e8a3aa8637c36: tests/dnssec_universe.rs

tests/dnssec_universe.rs:
