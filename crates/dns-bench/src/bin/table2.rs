//! Regenerates Table 2 (message and memory overhead) of the DSN 2007 paper.
//! See DESIGN.md §4 for the experiment index.

use dns_bench::experiments::table2;
use dns_bench::Lab;
use dns_trace::TraceSpec;

fn main() {
    let mut lab = Lab::new();
    table2(&mut lab, &TraceSpec::TRC1);
    lab.emit_manifest();
}
