//! Runs the complete reproduction: every table and figure, sharing one
//! lab (universe, traces, farms, memoised runs) across experiments.
//!
//! Writes CSVs into `EXPERIMENTS-output/` (override with `DNS_REPRO_OUT`)
//! and honours `DNS_REPRO_SCALE` for quick previews.

use dns_bench::experiments;
use dns_bench::Lab;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut lab = Lab::new();
    println!(
        "universe ready: {} zones ({:.1}s)",
        lab.universe().zone_count(),
        t0.elapsed().as_secs_f64()
    );
    experiments::all(&mut lab);
    lab.emit_manifest();
    println!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
