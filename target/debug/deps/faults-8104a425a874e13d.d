/root/repo/target/debug/deps/faults-8104a425a874e13d.d: crates/dns-netd/tests/faults.rs

/root/repo/target/debug/deps/faults-8104a425a874e13d: crates/dns-netd/tests/faults.rs

crates/dns-netd/tests/faults.rs:
