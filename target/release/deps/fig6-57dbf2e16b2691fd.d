/root/repo/target/release/deps/fig6-57dbf2e16b2691fd.d: crates/dns-bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-57dbf2e16b2691fd: crates/dns-bench/src/bin/fig6.rs

crates/dns-bench/src/bin/fig6.rs:
