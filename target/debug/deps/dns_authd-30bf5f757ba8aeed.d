/root/repo/target/debug/deps/dns_authd-30bf5f757ba8aeed.d: crates/dns-netd/src/bin/dns-authd.rs

/root/repo/target/debug/deps/dns_authd-30bf5f757ba8aeed: crates/dns-netd/src/bin/dns-authd.rs

crates/dns-netd/src/bin/dns-authd.rs:
