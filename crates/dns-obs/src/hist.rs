//! A fixed-bucket log-scale histogram for latency and occupancy samples.
//!
//! The bucket layout is HDR-style: values `0..8` get one exact bucket
//! each, and every further power-of-two octave is split into 8 linear
//! sub-buckets, so the relative bucket width never exceeds 12.5% while
//! the whole `u64` range stays covered by a fixed 496-slot array. The
//! array lives inline — recording, merging and quantile queries never
//! allocate, which keeps the histogram safe to embed in the resolver's
//! hot path (the PR-3 zero-allocation guarantees extend to it).

use std::fmt;

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave (8).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: 8 exact buckets for `0..8`, then 8 sub-buckets
/// for each of the 61 octaves `2^3..=2^63`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB; // 496

/// A log-scale histogram over `u64` samples with a fixed inline bucket
/// array; see the module docs for the layout.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    /// Saturating sum of all recorded samples.
    sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// The bucket index covering `v`.
fn index_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = octave - SUB_BITS;
    let sub = (v >> shift) as usize - SUB;
    SUB + (octave - SUB_BITS) as usize * SUB + sub
}

/// The smallest value mapping to bucket `i`.
fn lower_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let k = i - SUB;
    let octave = (k / SUB) as u32 + SUB_BITS;
    let sub = (k % SUB) as u64;
    (SUB as u64 + sub) << (octave - SUB_BITS)
}

/// The largest value mapping to bucket `i`.
fn upper_bound(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let k = i - SUB;
    let octave = (k / SUB) as u32 + SUB_BITS;
    let width = 1u64 << (octave - SUB_BITS);
    lower_bound(i) + (width - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket index a value falls into (exposed for tests and the
    /// property suite's error-bound checks).
    pub fn bucket_index(v: u64) -> usize {
        index_of(v)
    }

    /// `[low, high]` value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LogHistogram::bucket_count()`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < BUCKETS, "bucket index out of range");
        (lower_bound(i), upper_bound(i))
    }

    /// Number of buckets in the fixed layout.
    pub const fn bucket_count() -> usize {
        BUCKETS
    }

    /// Nearest-rank quantile, `p` in `[0, 100]`: the upper bound of the
    /// bucket holding the rank-`⌈p/100·n⌉` sample (the same rank rule as
    /// `dns_stats::Summary::percentile`, quantised to one bucket).
    /// Allocation-free. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(upper_bound(i));
            }
        }
        unreachable!("cumulative count reaches self.count");
    }

    /// p50 shorthand; 0 when empty.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0).unwrap_or(0)
    }

    /// p90 shorthand; 0 when empty.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0).unwrap_or(0)
    }

    /// p99 shorthand; 0 when empty.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0).unwrap_or(0)
    }

    /// Largest recorded sample, quantised to its bucket's upper bound;
    /// `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.buckets.iter().rposition(|&c| c > 0).map(upper_bound)
    }

    /// Adds every bucket of `other` into `self`. Merging is associative
    /// and commutative, so per-thread histograms can be combined in any
    /// order with identical results. Allocation-free.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Per-bucket saturating difference `self - earlier`: the samples
    /// recorded in a window, given snapshots at its ends. Mirrors the
    /// saturating semantics of `ResolverMetrics` subtraction, so a
    /// counter reset between snapshots yields zeros, not wrap-around.
    pub fn diff(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *o = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// `(low, high, count)` for every non-empty bucket, in value order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (lower_bound(i), upper_bound(i), c))
    }
}

impl fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.p50())
            .field("p90", &self.p90())
            .field("p99", &self.p99())
            .finish()
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max().unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        for v in 0..8u64 {
            assert_eq!(index_of(v), v as usize);
            assert_eq!(LogHistogram::bucket_range(v as usize), (v, v));
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's upper bound + 1 is the next bucket's lower bound.
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                upper_bound(i) + 1,
                lower_bound(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
        // Round trip: a bucket's bounds map back to the bucket.
        for i in 0..BUCKETS {
            assert_eq!(index_of(lower_bound(i)), i);
            assert_eq!(index_of(upper_bound(i)), i);
        }
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_width_bounded() {
        for i in SUB..BUCKETS {
            let (lo, hi) = LogHistogram::bucket_range(i);
            let width = (hi - lo) as f64 + 1.0;
            assert!(
                width / lo as f64 <= 1.0 / SUB as f64 + 1e-12,
                "bucket {i} too wide: [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn percentiles_quantise_to_buckets() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 100, 1_000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(50.0), Some(3));
        let p99 = h.percentile(99.0).unwrap();
        let (lo, hi) = LogHistogram::bucket_range(index_of(10_000));
        assert!(p99 >= lo && p99 <= hi);
        assert_eq!(h.max(), Some(hi));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_and_diff_roundtrip() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [5u64, 17, 900] {
            a.record(v);
        }
        for v in [6u64, 17, 123_456] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.diff(&b), a);
        assert_eq!(merged.diff(&a), b);
        // Diff against a *later* snapshot saturates to empty.
        assert_eq!(a.diff(&merged).count(), 0);
    }

    #[test]
    fn display_and_debug_are_compact() {
        let mut h = LogHistogram::new();
        h.record(40);
        let dbg = format!("{h:?}");
        assert!(dbg.contains("count: 1"), "{dbg}");
        assert!(!dbg.contains("buckets"), "{dbg}");
        assert!(format!("{h}").starts_with("n=1 "));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        LogHistogram::new().percentile(101.0);
    }
}
