/root/repo/target/debug/deps/fig10-bdfd259b97c3c3f5.d: crates/dns-bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-bdfd259b97c3c3f5.rmeta: crates/dns-bench/src/bin/fig10.rs Cargo.toml

crates/dns-bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
