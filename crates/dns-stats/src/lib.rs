//! Statistics toolkit for the DNS-resilience experiments.
//!
//! Small, dependency-light building blocks used by every experiment binary:
//!
//! * [`Cdf`] — empirical cumulative distribution functions (Figure 3),
//! * [`Histogram`] — fixed-bin counting,
//! * [`Summary`] — running mean/min/max/percentiles,
//! * [`Table`] — aligned plain-text and CSV table emission matching the
//!   rows/series the paper reports,
//! * [`manifest`] — the run-manifest table every sweep prints and writes
//!   alongside its CSVs.
//!
//! # Example
//!
//! ```rust
//! use dns_stats::Cdf;
//!
//! let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 4.0]);
//! assert_eq!(cdf.quantile(0.5), Some(2.0));
//! assert!((cdf.fraction_at_or_below(2.0) - 0.75).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod histogram;
pub mod manifest;
mod plot;
mod summary;
mod table;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use manifest::{manifest_table, ManifestRow};
pub use plot::{sparkline, AsciiChart};
pub use summary::Summary;
pub use table::{Align, Table};
