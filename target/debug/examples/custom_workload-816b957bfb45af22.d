/root/repo/target/debug/examples/custom_workload-816b957bfb45af22.d: examples/custom_workload.rs

/root/repo/target/debug/examples/custom_workload-816b957bfb45af22: examples/custom_workload.rs

examples/custom_workload.rs:
