/root/repo/target/release/deps/ablation-db0d128a4a220af5.d: crates/dns-bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-db0d128a4a220af5: crates/dns-bench/src/bin/ablation.rs

crates/dns-bench/src/bin/ablation.rs:
