/root/repo/target/debug/deps/proptests-bd6db09cafa5f619.d: crates/dns-sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-bd6db09cafa5f619.rmeta: crates/dns-sim/tests/proptests.rs Cargo.toml

crates/dns-sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
