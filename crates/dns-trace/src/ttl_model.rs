//! Empirical TTL mixtures for infrastructure and data records.
//!
//! The paper reports that IRR TTLs in the 2006 DNS ranged "from some
//! minutes to some days" with "most zones [having] a TTL value less or
//! equal to 12 hours" (§4, Long TTL), and that the large per-TTL variance
//! is what makes the relative (fraction-of-TTL) gap distribution so wide
//! (§5, Figure 3). These mixtures encode that shape.

use dns_core::Ttl;
use rand::{Rng, RngExt};
use std::fmt;

/// A discrete TTL mixture: `(ttl, weight)` buckets sampled by weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TtlModel {
    buckets: Vec<(Ttl, f64)>,
    total_weight: f64,
}

impl TtlModel {
    /// Builds a mixture from `(ttl, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `buckets` is empty or any weight is non-positive.
    pub fn new(buckets: Vec<(Ttl, f64)>) -> Self {
        assert!(!buckets.is_empty(), "ttl model needs at least one bucket");
        assert!(
            buckets.iter().all(|&(_, w)| w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        let total_weight = buckets.iter().map(|&(_, w)| w).sum();
        TtlModel {
            buckets,
            total_weight,
        }
    }

    /// Infrastructure-record TTLs: minutes → days, mode at 12 hours, a
    /// small multi-day tail. Matches the paper's description of observed
    /// zone IRR TTLs.
    pub fn infrastructure() -> Self {
        TtlModel::new(vec![
            (Ttl::from_mins(5), 0.05),
            (Ttl::from_mins(30), 0.08),
            (Ttl::from_hours(1), 0.10),
            (Ttl::from_hours(2), 0.10),
            (Ttl::from_hours(6), 0.15),
            (Ttl::from_hours(12), 0.27),
            (Ttl::from_days(1), 0.15),
            (Ttl::from_days(2), 0.07),
            (Ttl::from_days(7), 0.03),
        ])
    }

    /// End-host (data) record TTLs: strongly skewed toward hours, with a
    /// CDN-like short-TTL head. The paper's example data record
    /// (`www.ucla.edu`) carries 4 hours.
    pub fn data() -> Self {
        TtlModel::new(vec![
            (Ttl::from_secs(60), 0.08),
            (Ttl::from_mins(5), 0.12),
            (Ttl::from_mins(30), 0.15),
            (Ttl::from_hours(1), 0.20),
            (Ttl::from_hours(4), 0.25),
            (Ttl::from_hours(12), 0.10),
            (Ttl::from_days(1), 0.10),
        ])
    }

    /// TTLs for root/TLD infrastructure: multi-day values, as the paper
    /// notes for zones directly below the root.
    pub fn top_level() -> Self {
        TtlModel::new(vec![
            (Ttl::from_days(2), 0.5),
            (Ttl::from_days(4), 0.3),
            (Ttl::from_days(7), 0.2),
        ])
    }

    /// Draws one TTL.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ttl {
        let mut u: f64 = rng.random::<f64>() * self.total_weight;
        for &(ttl, w) in &self.buckets {
            if u < w {
                return ttl;
            }
            u -= w;
        }
        self.buckets.last().expect("non-empty").0
    }

    /// The buckets.
    pub fn buckets(&self) -> &[(Ttl, f64)] {
        &self.buckets
    }

    /// Weighted fraction of the mixture at or below `ttl`.
    pub fn fraction_at_or_below(&self, ttl: Ttl) -> f64 {
        let below: f64 = self
            .buckets
            .iter()
            .filter(|&&(t, _)| t <= ttl)
            .map(|&(_, w)| w)
            .sum();
        below / self.total_weight
    }
}

impl fmt::Display for TtlModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ttl model ({} buckets)", self.buckets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn infrastructure_mixture_is_mostly_short() {
        // The paper: "most zones have a TTL value less or equal to 12 h".
        let m = TtlModel::infrastructure();
        assert!(m.fraction_at_or_below(Ttl::from_hours(12)) >= 0.7);
        assert!(m.fraction_at_or_below(Ttl::from_days(7)) >= 0.999);
    }

    #[test]
    fn samples_come_from_buckets() {
        let m = TtlModel::infrastructure();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let t = m.sample(&mut rng);
            assert!(m.buckets().iter().any(|&(b, _)| b == t));
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let m = TtlModel::new(vec![(Ttl::from_mins(1), 9.0), (Ttl::from_days(1), 1.0)]);
        let mut rng = StdRng::seed_from_u64(5);
        let short = (0..10_000)
            .filter(|_| m.sample(&mut rng) == Ttl::from_mins(1))
            .count();
        assert!((8_700..=9_300).contains(&short), "got {short}");
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn non_positive_weight_rejected() {
        TtlModel::new(vec![(Ttl::from_mins(1), 0.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn empty_model_rejected() {
        TtlModel::new(vec![]);
    }
}
