/root/repo/target/debug/deps/fig12-e364f1a9b3a89267.d: crates/dns-bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-e364f1a9b3a89267.rmeta: crates/dns-bench/src/bin/fig12.rs Cargo.toml

crates/dns-bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
