/root/repo/target/release/deps/dns_sim-238f00e29d1640c5.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

/root/repo/target/release/deps/libdns_sim-238f00e29d1640c5.rlib: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

/root/repo/target/release/deps/libdns_sim-238f00e29d1640c5.rmeta: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/attack.rs:
crates/dns-sim/src/damage.rs:
crates/dns-sim/src/driver.rs:
crates/dns-sim/src/experiment.rs:
crates/dns-sim/src/farm.rs:
crates/dns-sim/src/gap.rs:
crates/dns-sim/src/network.rs:
crates/dns-sim/src/sweep.rs:
