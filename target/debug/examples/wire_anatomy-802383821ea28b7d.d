/root/repo/target/debug/examples/wire_anatomy-802383821ea28b7d.d: examples/wire_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libwire_anatomy-802383821ea28b7d.rmeta: examples/wire_anatomy.rs Cargo.toml

examples/wire_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
