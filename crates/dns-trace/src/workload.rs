//! Query workload synthesis over a generated universe.

use crate::stream::StreamShape;
use crate::{TargetSource, Trace, TraceCursor, TraceStream, Universe, UniverseTargets};
use std::fmt;

/// Builds a [`Trace`] over a [`Universe`]: Zipf name popularity, diurnal
/// rate modulation, a sprinkling of MX and non-existent-name queries.
///
/// ```rust
/// use dns_trace::{UniverseSpec, WorkloadBuilder};
///
/// let universe = UniverseSpec::small().build(7);
/// let trace = WorkloadBuilder::new("demo", 1, 10, 5_000)
///     .zipf_alpha(0.9)
///     .generate(&universe, 42);
/// assert_eq!(trace.queries.len(), 5_000);
/// assert!(trace.is_sorted());
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    days: u64,
    clients: u32,
    total_queries: u64,
    zipf_alpha: f64,
    nxdomain_fraction: f64,
    mx_fraction: f64,
    diurnal_amplitude: f64,
}

impl WorkloadBuilder {
    /// Starts a workload: `days` of traffic from `clients` clients,
    /// `total_queries` queries in total.
    pub fn new(name: &str, days: u64, clients: u32, total_queries: u64) -> Self {
        WorkloadBuilder {
            name: name.to_string(),
            days,
            clients,
            total_queries,
            zipf_alpha: 1.05,
            nxdomain_fraction: 0.03,
            mx_fraction: 0.05,
            diurnal_amplitude: 0.5,
        }
    }

    /// Sets the popularity skew (default 1.05; DNS name popularity is
    /// classically Zipf with alpha near 1, Jung et al. IMW 2001).
    pub fn zipf_alpha(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Sets the fraction of queries for names that do not exist.
    pub fn nxdomain_fraction(mut self, f: f64) -> Self {
        self.nxdomain_fraction = f;
        self
    }

    /// Sets the fraction of apex queries asking for MX instead of A.
    pub fn mx_fraction(mut self, f: f64) -> Self {
        self.mx_fraction = f;
        self
    }

    /// Sets the day/night swing of the arrival rate (0 = flat,
    /// 1 = nights are silent).
    pub fn diurnal_amplitude(mut self, a: f64) -> Self {
        self.diurnal_amplitude = a.clamp(0.0, 1.0);
        self
    }

    /// Generates the trace deterministically from `seed`.
    ///
    /// This is a collected [`TraceStream`] — materialized and streamed
    /// traces are byte-identical for the same seed by construction.
    ///
    /// # Panics
    ///
    /// Panics if the universe has no queryable names or `clients == 0`.
    pub fn generate(&self, universe: &Universe, seed: u64) -> Trace {
        self.stream(UniverseTargets::new(universe), seed)
            .collect_trace()
    }

    /// Starts a [`TraceStream`] over `source`, yielding the trace's
    /// queries on demand without materializing them — `O(zones)`
    /// resident memory at any trace length.
    ///
    /// # Panics
    ///
    /// Panics if the source has no target groups or `clients == 0`.
    pub fn stream<S: TargetSource>(&self, source: S, seed: u64) -> TraceStream<S> {
        TraceStream::new(self.shape(), source, seed)
    }

    /// Resumes a stream at `cursor` (captured via
    /// [`TraceStream::cursor`] from a stream with this same shape,
    /// `source` and `seed`): the continuation is byte-identical to the
    /// original stream's remainder.
    ///
    /// # Panics
    ///
    /// Same conditions as [`WorkloadBuilder::stream`].
    pub fn resume<S: TargetSource>(
        &self,
        source: S,
        seed: u64,
        cursor: &TraceCursor,
    ) -> TraceStream<S> {
        let mut stream = self.stream(source, seed);
        stream.seek(cursor);
        stream
    }

    fn shape(&self) -> StreamShape {
        StreamShape {
            name: self.name.clone(),
            days: self.days,
            clients: self.clients,
            total_queries: self.total_queries,
            zipf_alpha: self.zipf_alpha,
            nxdomain_fraction: self.nxdomain_fraction,
            mx_fraction: self.mx_fraction,
            diurnal_amplitude: self.diurnal_amplitude,
        }
    }
}

impl fmt::Display for WorkloadBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload {} ({}d, {} clients, {} queries)",
            self.name, self.days, self.clients, self.total_queries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniverseSpec;
    use dns_core::{Name, RecordType, SimTime};

    fn universe() -> Universe {
        UniverseSpec::small().build(7)
    }

    fn gen(total: u64) -> Trace {
        WorkloadBuilder::new("T", 2, 20, total).generate(&universe(), 42)
    }

    #[test]
    fn exact_query_count_and_sorted() {
        let t = gen(10_000);
        assert_eq!(t.queries.len(), 10_000);
        assert!(t.is_sorted());
        // All timestamps within the trace horizon.
        let horizon = SimTime::from_days(2);
        assert!(t.queries.iter().all(|q| q.at < horizon));
    }

    #[test]
    fn deterministic_given_seed() {
        let u = universe();
        let a = WorkloadBuilder::new("T", 1, 5, 2_000).generate(&u, 1);
        let b = WorkloadBuilder::new("T", 1, 5, 2_000).generate(&u, 1);
        assert_eq!(a, b);
        let c = WorkloadBuilder::new("T", 1, 5, 2_000).generate(&u, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_skewed() {
        let t = gen(20_000);
        let mut counts: std::collections::HashMap<&Name, usize> = std::collections::HashMap::new();
        for q in &t.queries {
            *counts.entry(&q.question.name).or_default() += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top name should dwarf the median (Zipf head).
        let median = sorted[sorted.len() / 2];
        assert!(
            sorted[0] > median * 10,
            "head {} median {}",
            sorted[0],
            median
        );
    }

    #[test]
    fn diurnal_variation_present() {
        let t = WorkloadBuilder::new("T", 2, 20, 48_000)
            .diurnal_amplitude(0.8)
            .generate(&universe(), 9);
        let hour = |h: u64| {
            t.queries_between(SimTime::from_hours(h), SimTime::from_hours(h + 1))
                .len()
        };
        // 15:00 (peak) vs 03:00 (trough) on day one.
        assert!(
            hour(15) > hour(3) * 2,
            "peak {} trough {}",
            hour(15),
            hour(3)
        );
    }

    #[test]
    fn query_mix_includes_mx_and_nxdomain() {
        let t = WorkloadBuilder::new("T", 1, 10, 20_000)
            .nxdomain_fraction(0.05)
            .mx_fraction(0.05)
            .generate(&universe(), 3);
        let mx = t
            .queries
            .iter()
            .filter(|q| q.question.rtype == RecordType::Mx)
            .count();
        let nx = t
            .queries
            .iter()
            .filter(|q| {
                q.question
                    .name
                    .labels()
                    .next()
                    .is_some_and(|l| l.starts_with(b"nx"))
            })
            .count();
        assert!((600..=1_400).contains(&mx), "mx {mx}");
        assert!((600..=1_400).contains(&nx), "nx {nx}");
    }

    #[test]
    fn clients_all_appear() {
        let t = gen(20_000);
        let distinct: std::collections::HashSet<u32> = t.queries.iter().map(|q| q.client).collect();
        assert_eq!(distinct.len(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        WorkloadBuilder::new("T", 1, 0, 10).generate(&universe(), 1);
    }
}
