//! The recursive resolver daemon: a [`CachingServer`] behind a UDP
//! socket, resolving through real upstream sockets in wall-clock time.
//!
//! Since PR 7 the datagram path is *batched* and has a *fast lane*:
//! workers move packets through the [`PacketIo`] trait in batches of up
//! to [`crate::MAX_BATCH`], and a shared [`WireCache`] of pre-serialized
//! responses answers repeat queries by patching the cached bytes in
//! place (ID, RD bit, question casing, decremented TTLs) — no message
//! decode, no resolver lock, no allocation.

use crate::packetio::{Packet, PacketBatch, PacketIo, UdpPacketIo};
use crate::wall_clock;
use crate::wirecache::{self, WireCache};
use dns_core::{wire, Message, RData, Rcode, Record, RecordClass, RecordType, SimTime, Ttl};
use dns_obs::{HistId, LogHistogram, Registry};
use dns_resolver::{
    CacheBackend, CachingServer, LocalBackend, Outcome, ResolverConfig, ResolverMetrics, RootHints,
    ShardedCache, Upstream,
};
use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Owner name answered with a metrics snapshot for `CHAOS TXT` queries
/// (the `version.bind.` convention, for metrics).
pub const CHAOS_METRICS_NAME: &str = "metrics.bind";

/// Daemon-side counters: what happened between the socket and the
/// resolver (the resolver's own counters live in
/// [`dns_resolver::ResolverMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Responses successfully sent back to clients.
    pub served: u64,
    /// Responses that could not be sent (socket-level send errors).
    pub send_errors: u64,
    /// Responses too large for the wire that were downgraded to a
    /// TC-bit truncated reply instead of being silently dropped.
    pub truncated_responses: u64,
    /// Queries answered from the pre-serialized wire cache (fast lane).
    pub wire_hits: u64,
    /// Fast-lane-eligible queries that missed the wire cache and took
    /// the full decode/resolve path.
    pub wire_misses: u64,
    /// Packets ineligible for the fast lane (CHAOS class, EDNS0/OPT
    /// additionals, compressed question names, non-query opcodes, …)
    /// routed straight to the slow path.
    pub wire_bypass: u64,
    /// Compiled response bytes currently held by the wire cache (the
    /// quantity its byte budget bounds).
    pub wire_bytes: u64,
}

impl fmt::Display for DaemonStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} served, {} send errors, {} truncated, wire {}h/{}m/{}b holding {} bytes",
            self.served,
            self.send_errors,
            self.truncated_responses,
            self.wire_hits,
            self.wire_misses,
            self.wire_bypass,
            self.wire_bytes
        )
    }
}

/// Health state shared by the worker pool: the first non-timeout socket
/// error flips the flag and is retained for inspection, instead of a
/// worker dying silently.
#[derive(Debug, Default)]
struct Health {
    failed: AtomicBool,
    last_error: Mutex<Option<String>>,
}

impl Health {
    fn record(&self, context: &str, e: &io::Error) {
        self.failed.store(true, Ordering::Relaxed);
        *self.last_error.lock().unwrap() = Some(format!("{context}: {e}"));
    }
}

/// Daemon-side observability shared by the worker pool: wall-clock
/// latency split by lane (the resolver's own histogram models *virtual*
/// latency; these measure real elapsed time including lock contention).
/// The split makes the wire cache's latency win directly visible:
/// fast-lane hits never decode, resolve or allocate, so their histogram
/// sits at the clock floor while the slow path carries the real cost.
#[derive(Debug)]
struct DaemonObs {
    registry: Registry,
    wall_fast: HistId,
    wall_slow: HistId,
}

impl DaemonObs {
    fn new() -> Self {
        let mut registry = Registry::new();
        let wall_fast = registry.histogram(
            "wall_latency_fast_ms",
            "Wall-clock latency per wire fast-lane hit in milliseconds",
        );
        let wall_slow = registry.histogram(
            "wall_latency_slow_ms",
            "Wall-clock latency per slow-path resolution in milliseconds",
        );
        DaemonObs {
            registry,
            wall_fast,
            wall_slow,
        }
    }

    fn observe_fast(&mut self, ms: u64) {
        self.registry.observe(self.wall_fast, ms);
    }

    fn observe_slow(&mut self, ms: u64) {
        self.registry.observe(self.wall_slow, ms);
    }

    fn fast_histogram(&self) -> &dns_obs::LogHistogram {
        self.registry.hist(self.wall_fast)
    }

    fn slow_histogram(&self) -> &dns_obs::LogHistogram {
        self.registry.hist(self.wall_slow)
    }
}

/// The wire fast lane, shared by every worker: the pre-serialized
/// response cache plus its hit/miss/bypass counter trio.
#[derive(Debug)]
struct WireLane {
    cache: Mutex<WireCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypass: AtomicU64,
}

impl Default for WireLane {
    fn default() -> Self {
        WireLane {
            cache: Mutex::new(WireCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypass: AtomicU64::new(0),
        }
    }
}

/// Everything a worker thread shares with its pool and the daemon handle.
#[derive(Debug)]
struct Shared<B: CacheBackend> {
    stop: AtomicBool,
    served: AtomicU64,
    send_errors: AtomicU64,
    truncated: AtomicU64,
    health: Health,
    /// The pool's resolvers: a single shared entry in default mode, one
    /// per worker in sharded mode (worker `i` resolves through
    /// `servers[i % len]`).
    servers: Vec<Arc<Mutex<CachingServer<B>>>>,
    obs: Mutex<DaemonObs>,
    lane: WireLane,
}

impl<B: CacheBackend> Shared<B> {
    fn stats(&self) -> DaemonStats {
        DaemonStats {
            served: self.served.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
            truncated_responses: self.truncated.load(Ordering::Relaxed),
            wire_hits: self.lane.hits.load(Ordering::Relaxed),
            wire_misses: self.lane.misses.load(Ordering::Relaxed),
            wire_bypass: self.lane.bypass.load(Ordering::Relaxed),
            wire_bytes: self.lane.cache.lock().unwrap().bytes() as u64,
        }
    }
}

/// A running recursive resolver daemon.
///
/// Clients send standard DNS queries; the daemon resolves them through
/// its [`CachingServer`] (all resilience schemes apply — the cache is the
/// same code the simulator evaluates) and answers with the outcome:
/// answers as-is, NXDOMAIN/NODATA as negative responses, and resolution
/// failure as SERVFAIL.
///
/// The daemon runs a small worker pool ([`Resolved::spawn_pool`]): every
/// worker drains the shared UDP socket in batches through [`PacketIo`]
/// (the kernel delivers each datagram to exactly one worker) and owns its
/// own upstream transport, so decoding, encoding and socket I/O overlap
/// across workers. Repeat queries for hot names are answered from a
/// shared [`WireCache`] of compiled responses without touching the
/// resolver at all; everything else takes the slow path. In the default
/// mode one [`CachingServer`] sits behind one mutex and workers serialize
/// whole resolutions through it; in sharded mode
/// ([`Resolved::spawn_sharded`]) every worker owns its *own* resolver
/// over one shared [`ShardedCache`], so resolutions proceed concurrently
/// and contend only per cache shard, with single-flight coalescing
/// deduplicating identical in-flight fetches across the pool. A worker
/// that hits a fatal socket error records it ([`Resolved::last_error`])
/// and drops out, flipping [`Resolved::healthy`] — the daemon degrades
/// visibly instead of dying silently.
#[derive(Debug)]
pub struct Resolved<B: CacheBackend = LocalBackend> {
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared<B>>,
}

impl Resolved {
    /// Binds `bind` and starts resolving through `upstream` with a single
    /// worker.
    ///
    /// # Errors
    ///
    /// Returns any socket-level error from binding.
    pub fn spawn<U>(
        cs: CachingServer,
        upstream: U,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved>
    where
        U: Upstream + Send + 'static,
    {
        Resolved::spawn_pool(cs, vec![upstream], bind)
    }

    /// Binds `bind` and starts one worker per upstream in `upstreams`
    /// (each worker owns its transport; the caller decides the pool
    /// size). All workers share `cs` behind one lock.
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding/cloning, and
    /// `InvalidInput` when `upstreams` is empty.
    pub fn spawn_pool<U>(
        cs: CachingServer,
        upstreams: Vec<U>,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved>
    where
        U: Upstream + Send + 'static,
    {
        Resolved::spawn_servers(vec![cs], upstreams, bind)
    }
}

impl Resolved<ShardedCache> {
    /// Binds `bind` and starts one worker per upstream, every worker
    /// owning its own [`CachingServer`] over one shared [`ShardedCache`]
    /// built from `config` (`config.shards` shards, coalescing per
    /// `config.coalesce`). Worker seeds are derived from `config.seed`
    /// (`seed + worker index`) so query-ID streams stay per-worker
    /// deterministic yet distinct.
    ///
    /// # Errors
    ///
    /// Returns socket-level errors from binding/cloning, and
    /// `InvalidInput` when `upstreams` is empty.
    pub fn spawn_sharded<U>(
        config: ResolverConfig,
        hints: RootHints,
        upstreams: Vec<U>,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved<ShardedCache>>
    where
        U: Upstream + Send + 'static,
    {
        let backend = ShardedCache::new(config.shards);
        let servers = (0..upstreams.len().max(1))
            .map(|i| {
                let config = config.to_builder().seed(config.seed + i as u64).build();
                CachingServer::with_backend(config, hints.clone(), backend.clone())
            })
            .collect();
        Resolved::spawn_servers(servers, upstreams, bind)
    }

    /// The shared sharded backend (coalescing counters, shard registry).
    pub fn sharded_backend(&self) -> ShardedCache {
        self.shared.servers[0].lock().unwrap().backend().clone()
    }
}

impl<B: CacheBackend + Send + 'static> Resolved<B> {
    /// The common pool bring-up: `servers` is either a single resolver
    /// shared by every worker (default mode) or one per upstream
    /// (sharded mode).
    fn spawn_servers<U>(
        servers: Vec<CachingServer<B>>,
        upstreams: Vec<U>,
        bind: impl ToSocketAddrs,
    ) -> io::Result<Resolved<B>>
    where
        U: Upstream + Send + 'static,
    {
        if upstreams.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "worker pool needs at least one upstream",
            ));
        }
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let addr = socket.local_addr()?;
        let ios = (0..upstreams.len())
            .map(|_| socket.try_clone().map(UdpPacketIo::new))
            .collect::<io::Result<Vec<_>>>()?;
        Self::spawn_with_io(servers, upstreams, ios, addr)
    }

    /// Starts the pool over caller-supplied packet transports instead of
    /// a bound UDP socket — the sim/loopback mode: drive the daemon's
    /// *exact* batched worker loop through [`crate::LoopbackHub`] (or any
    /// other [`PacketIo`]) without opening sockets, e.g. under a
    /// [`crate::FaultInjector`]ed upstream. One worker is started per
    /// `(upstream, io)` pair; [`Resolved::addr`] reports a placeholder.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `upstreams` is empty or the three vectors
    /// disagree on pool size (`servers` may also be a single entry shared
    /// by every worker).
    pub fn spawn_io<U, P>(
        servers: Vec<CachingServer<B>>,
        upstreams: Vec<U>,
        ios: Vec<P>,
    ) -> io::Result<Resolved<B>>
    where
        U: Upstream + Send + 'static,
        P: PacketIo + 'static,
    {
        if upstreams.is_empty() || upstreams.len() != ios.len() || servers.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "spawn_io needs matching non-empty upstream/io pools and at least one server",
            ));
        }
        let addr: SocketAddr = "127.0.0.1:0".parse().expect("static addr");
        Self::spawn_with_io(servers, upstreams, ios, addr)
    }

    fn spawn_with_io<U, P>(
        servers: Vec<CachingServer<B>>,
        upstreams: Vec<U>,
        ios: Vec<P>,
        addr: SocketAddr,
    ) -> io::Result<Resolved<B>>
    where
        U: Upstream + Send + 'static,
        P: PacketIo + 'static,
    {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            served: AtomicU64::new(0),
            send_errors: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            health: Health::default(),
            servers: servers
                .into_iter()
                .map(|cs| Arc::new(Mutex::new(cs)))
                .collect(),
            obs: Mutex::new(DaemonObs::new()),
            lane: WireLane::default(),
        });

        let mut workers = Vec::with_capacity(upstreams.len());
        for (i, (upstream, io)) in upstreams.into_iter().zip(ios).enumerate() {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("resolved-{addr}-w{i}"))
                .spawn(move || Self::worker_loop(io, upstream, &shared, i))
                .expect("spawn resolved worker");
            workers.push(handle);
        }
        Ok(Resolved {
            addr,
            workers,
            shared,
        })
    }

    /// One worker: drain a batch, serve every packet (fast lane first,
    /// slow path otherwise), send the whole batch back.
    fn worker_loop<U: Upstream, P: PacketIo>(
        mut io: P,
        mut upstream: U,
        shared: &Shared<B>,
        index: usize,
    ) {
        let mut rx = PacketBatch::new();
        let mut tx = PacketBatch::new();
        let mut key = Vec::with_capacity(dns_core::MAX_NAME_LEN);
        while !shared.stop.load(Ordering::Relaxed) {
            let n = match io.recv_batch(&mut rx) {
                Ok(0) => continue, // timeout tick: re-check the stop flag
                Ok(n) => n,
                Err(e) => {
                    // Fatal receive error: surface it and retire this
                    // worker instead of dying without a trace.
                    shared.health.record("recv", &e);
                    break;
                }
            };
            tx.clear();
            let now = wall_clock();
            for i in 0..n {
                Self::serve_packet(
                    shared,
                    index,
                    &mut upstream,
                    now,
                    rx.get(i),
                    &mut key,
                    &mut tx,
                );
            }
            if tx.is_empty() {
                continue;
            }
            // Count `served` only for replies the transport accepted.
            match io.send_batch(&tx) {
                Ok(sent) => {
                    shared.served.fetch_add(sent as u64, Ordering::Relaxed);
                    shared
                        .send_errors
                        .fetch_add((tx.len() - sent) as u64, Ordering::Relaxed);
                }
                Err(e) => {
                    shared.health.record("send", &e);
                    break;
                }
            }
        }
    }

    /// Serves one datagram into `tx` (or drops it: undecodable queries
    /// and unencodable replies get no response, as before).
    fn serve_packet<U: Upstream>(
        shared: &Shared<B>,
        index: usize,
        upstream: &mut U,
        now: SimTime,
        packet: &Packet,
        key: &mut Vec<u8>,
        tx: &mut PacketBatch,
    ) {
        let raw = packet.bytes();
        let peer = packet.peer();

        // Fast lane: a plain IN query answered straight from compiled
        // bytes — no decode, no resolver, no allocation.
        match wirecache::fast_query(raw) {
            Some(fq) if fq.class == RecordClass::In.code() => {
                let start = Instant::now();
                wirecache::lowercase_key(fq.raw_name, key);
                let mut cache = shared.lane.cache.lock().unwrap();
                let hit = tx.push_with(peer, |buf| cache.serve(key, fq.rtype, raw, now, buf));
                drop(cache);
                if hit {
                    let ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
                    shared.obs.lock().unwrap().observe_fast(ms);
                    shared.lane.hits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                shared.lane.misses.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                shared.lane.bypass.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Slow path: full decode → resolve → encode.
        let Ok(query) = wire::decode(raw) else {
            return;
        };
        let stats = shared.stats();
        let (response, expiry) = Self::answer(shared, index, upstream, stats, &query, now);
        let Some((mut bytes, offsets, was_truncated)) =
            encode_or_truncate(&query, &response, &shared.truncated)
        else {
            return; // not even the header+question fits — drop
        };
        // Compile cacheable answers into the wire cache *before* the
        // casing patch, so the stored bytes stay canonical (lowercase):
        // positive IN answers whose record-cache expiry is known.
        if !was_truncated && response.header.rcode == Rcode::NoError && !response.answers.is_empty()
        {
            if let (Some(exp), Some(q)) = (expiry, query.question()) {
                if q.class == RecordClass::In && now < exp {
                    shared
                        .lane
                        .cache
                        .lock()
                        .unwrap()
                        .insert(&q.name, q.rtype, &bytes, &offsets, now, exp);
                }
            }
        }
        // Echo the client's exact question spelling (0x20 randomization):
        // decoding lowercased the name, so patch it back from the raw
        // datagram. Also covers TC-bit fallback replies.
        wire::patch_question_case(&mut bytes, raw);
        tx.push_copy(&bytes, peer);
    }

    fn answer<U: Upstream>(
        shared: &Shared<B>,
        index: usize,
        upstream: &mut U,
        stats: DaemonStats,
        query: &Message,
        now: SimTime,
    ) -> (Message, Option<SimTime>) {
        let mut resp = Message::response_to(query);
        resp.header.recursion_available = true;
        let Some(question) = query.question().cloned() else {
            resp.header.rcode = Rcode::FormErr;
            return (resp, None);
        };
        if question.class == RecordClass::Ch {
            let resp = Self::answer_chaos(&shared.servers, &shared.obs, stats, resp, &question);
            return (resp, None);
        }
        let start = Instant::now();
        let (outcome, expiry) = {
            let cs = &shared.servers[index % shared.servers.len()];
            let mut cs = cs.lock().unwrap();
            let outcome = cs.resolve(&question, now, upstream);
            // While still holding the resolver: the record-cache expiry
            // bounding this answer, which caps the wire-cache entry.
            // `answer_expiry` reports *fresh* records only, so a
            // stale-served answer (RFC 8767 serve-stale window) yields
            // `None` and is never compiled into the wire cache — its
            // TTLs are clamped by the stale path and must not be
            // replayed verbatim by the fast lane.
            let expiry = match &outcome {
                Outcome::Answer { .. } => cs.answer_expiry(&question, now),
                _ => None,
            };
            (outcome, expiry)
        };
        let wall_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        shared.obs.lock().unwrap().observe_slow(wall_ms);
        match outcome {
            Outcome::Answer { records, .. } => {
                resp.answers = records;
            }
            Outcome::NxDomain { .. } => resp.header.rcode = Rcode::NxDomain,
            Outcome::NoData { .. } => {}
            Outcome::Fail => resp.header.rcode = Rcode::ServFail,
        }
        (resp, expiry)
    }

    /// Answers `CHAOS`-class queries: `TXT metrics.bind.` dumps the
    /// daemon's metrics snapshot (one TXT string per metric line, the
    /// `version.bind.` convention); everything else is REFUSED. With
    /// multiple resolvers (sharded mode) counters are summed and
    /// latency histograms merged across the pool, and the shared
    /// backend's own registry (shard counters, coalescing totals) is
    /// appended.
    fn answer_chaos(
        servers: &[Arc<Mutex<CachingServer<B>>>],
        obs: &Mutex<DaemonObs>,
        stats: DaemonStats,
        mut resp: Message,
        question: &dns_core::Question,
    ) -> Message {
        let metrics_name: dns_core::Name = CHAOS_METRICS_NAME.parse().expect("static name");
        if question.rtype != RecordType::Txt || question.name != metrics_name {
            resp.header.rcode = Rcode::Refused;
            return resp;
        }
        let (metrics, latency, backend_reg) = pool_snapshot(servers);
        let snapshot = {
            let obs = obs.lock().unwrap();
            metrics_registry(stats, &metrics, &latency, &obs)
        };
        let mut push_txt = |line: String| {
            resp.answers.push(Record::with_class(
                question.name.clone(),
                RecordClass::Ch,
                Ttl::ZERO,
                RData::Txt(line),
            ));
        };
        for line in snapshot.render_compact() {
            push_txt(line);
        }
        if let Some(reg) = backend_reg {
            for line in reg.render_compact() {
                push_txt(line);
            }
        }
        resp
    }
}

impl<B: CacheBackend> Resolved<B> {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Client queries served so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Number of workers the pool started with.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// `false` once any worker has hit a fatal socket error.
    pub fn healthy(&self) -> bool {
        !self.shared.health.failed.load(Ordering::Relaxed)
    }

    /// The first fatal error a worker recorded, if any.
    pub fn last_error(&self) -> Option<String> {
        self.shared.health.last_error.lock().unwrap().clone()
    }

    /// Daemon-side counters (socket-level; resolver counters are in
    /// [`Resolved::metrics`]).
    pub fn stats(&self) -> DaemonStats {
        self.shared.stats()
    }

    /// Entries currently in the wire fast-lane cache.
    pub fn wire_cache_len(&self) -> usize {
        self.shared.lane.cache.lock().unwrap().len()
    }

    /// Compiled response bytes currently in the wire fast-lane cache.
    pub fn wire_cache_bytes(&self) -> usize {
        self.shared.lane.cache.lock().unwrap().bytes()
    }

    /// Snapshot of the resolver's counters, summed over every resolver
    /// in the pool (a single resolver in default mode).
    pub fn metrics(&self) -> dns_resolver::ResolverMetrics {
        self.shared
            .servers
            .iter()
            .map(|s| *s.lock().unwrap().metrics())
            .fold(ResolverMetrics::default(), |acc, m| acc + m)
    }

    /// Prometheus-text snapshot of every daemon and resolver metric —
    /// the same registry the `CHAOS TXT metrics.bind.` answer renders in
    /// compact form. In sharded mode the pool's counters are summed,
    /// latency histograms merged, and the shared backend's registry
    /// (shard counters, coalescing totals) appended.
    pub fn prometheus(&self) -> String {
        let stats = self.stats();
        let (metrics, latency, backend_reg) = pool_snapshot(&self.shared.servers);
        let obs = self.shared.obs.lock().unwrap();
        let mut out = metrics_registry(stats, &metrics, &latency, &obs).render_prometheus();
        drop(obs);
        if let Some(reg) = backend_reg {
            out.push_str(&reg.render_prometheus());
        }
        out
    }

    /// Turns on per-query tracing in every resolver of the pool; the
    /// most recent query's trace is readable via
    /// [`Resolved::explain_last`].
    pub fn enable_trace(&self) {
        for s in self.shared.servers.iter() {
            s.lock().unwrap().obs_mut().enable_trace();
        }
    }

    /// Renders the most recent resolution's trace, when tracing is on
    /// and at least one query has been resolved. With a worker pool the
    /// first worker holding a non-empty trace wins.
    pub fn explain_last(&self) -> Option<String> {
        for s in self.shared.servers.iter() {
            let cs = s.lock().unwrap();
            if let Some(trace) = cs.obs().trace() {
                if !trace.is_empty() {
                    return Some(trace.explain());
                }
            }
        }
        None
    }

    /// Stops the daemon and joins every worker thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<B: CacheBackend> Drop for Resolved<B> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<B: CacheBackend> fmt::Display for Resolved<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resolved on {} ({} workers, {} served{})",
            self.addr,
            self.worker_count(),
            self.served(),
            if self.healthy() { "" } else { ", UNHEALTHY" }
        )
    }
}

/// Aggregates a worker pool's resolver state: summed counters, merged
/// modelled-latency histogram, and (when the backend exposes one, i.e.
/// sharded mode) the shared backend's own registry.
fn pool_snapshot<B: CacheBackend>(
    servers: &[Arc<Mutex<CachingServer<B>>>],
) -> (ResolverMetrics, LogHistogram, Option<Registry>) {
    let mut metrics = ResolverMetrics::default();
    let mut latency = LogHistogram::default();
    let mut backend_reg = None;
    for (i, s) in servers.iter().enumerate() {
        let cs = s.lock().unwrap();
        metrics = metrics + *cs.metrics();
        latency.merge(cs.latency_histogram());
        if i == 0 {
            backend_reg = cs.backend().obs_registry();
        }
    }
    (metrics, latency, backend_reg)
}

/// Builds a one-shot [`Registry`] holding the daemon's full metric
/// surface: socket-level counters, the wire fast-lane trio, every
/// resolver counter, the modelled (virtual-ms) resolve-latency histogram
/// and the measured wall-clock latency histogram. Rendered compact for
/// `CHAOS TXT` answers and as Prometheus text for
/// [`Resolved::prometheus`].
fn metrics_registry(
    stats: DaemonStats,
    metrics: &ResolverMetrics,
    resolve_latency: &dns_obs::LogHistogram,
    obs: &DaemonObs,
) -> Registry {
    let mut reg = Registry::new();
    let mut set = |name: &'static str, help: &'static str, value: u64| {
        let id = reg.counter(name, help);
        reg.set(id, value);
    };
    set(
        "daemon_served",
        "Responses sent back to clients",
        stats.served,
    );
    set(
        "daemon_send_errors",
        "Responses lost to socket send errors",
        stats.send_errors,
    );
    set(
        "daemon_truncated_responses",
        "Oversized responses downgraded to TC-bit replies",
        stats.truncated_responses,
    );
    set(
        "daemon_wire_hits",
        "Queries answered from the pre-serialized wire cache",
        stats.wire_hits,
    );
    set(
        "daemon_wire_misses",
        "Fast-lane-eligible queries that missed the wire cache",
        stats.wire_misses,
    );
    set(
        "daemon_wire_bypass",
        "Packets ineligible for the wire fast lane",
        stats.wire_bypass,
    );
    set(
        "daemon_wire_bytes",
        "Compiled response bytes currently held by the wire cache",
        stats.wire_bytes,
    );
    set(
        "resolver_queries_in",
        "Client queries resolved",
        metrics.queries_in,
    );
    set(
        "resolver_failed_in",
        "Client queries that ended in failure",
        metrics.failed_in,
    );
    set(
        "resolver_cache_hits",
        "Queries answered from cache",
        metrics.cache_hits,
    );
    set(
        "resolver_queries_out",
        "Upstream queries sent",
        metrics.queries_out,
    );
    set(
        "resolver_failed_out",
        "Upstream queries that got no usable response",
        metrics.failed_out,
    );
    set("resolver_referrals", "Referrals chased", metrics.referrals);
    set(
        "resolver_refreshes",
        "Proactive cache refreshes",
        metrics.refreshes,
    );
    set(
        "resolver_renewals_sent",
        "Renewal probes sent",
        metrics.renewals_sent,
    );
    set(
        "resolver_renewals_ok",
        "Renewal probes that succeeded",
        metrics.renewals_ok,
    );
    set(
        "resolver_negative_answers",
        "NXDOMAIN/NODATA answers",
        metrics.negative_answers,
    );
    set(
        "resolver_retries",
        "Upstream retransmissions",
        metrics.retries,
    );
    set(
        "resolver_backoff_wait_ms",
        "Total virtual milliseconds spent in retry backoff",
        metrics.backoff_wait_ms,
    );
    set(
        "resolver_deadline_exhausted",
        "Exchanges abandoned after the retry deadline",
        metrics.deadline_exhausted,
    );
    set(
        "resolver_mismatched_responses",
        "Responses dropped for ID/question mismatch",
        metrics.mismatched_responses,
    );
    set(
        "resolver_fetches_clamped",
        "NS-address fetches clamped by the MaxFetch(k) defense",
        metrics.fetches_clamped,
    );
    set(
        "resolver_flood_suppressed",
        "Queries refused by flood damping (inflight caps, refused negative storage)",
        metrics.flood_suppressed,
    );
    set(
        "resolver_neg_evictions_pressure",
        "Negative-cache entries evicted under budget pressure",
        metrics.neg_evictions_pressure,
    );
    set(
        "resolver_stale_served",
        "Expired answers served inside the serve-stale window (RFC 8767)",
        metrics.stale_served,
    );
    set(
        "resolver_stale_expired_unserved",
        "Failed lookups whose stale candidate had aged past the window",
        metrics.stale_expired_unserved,
    );
    set(
        "resolver_refresh_ahead",
        "Proactive refreshes issued ahead of expiry",
        metrics.refresh_ahead,
    );
    set(
        "resolver_prefetch_issued",
        "Predictive prefetches issued by the inter-arrival learner",
        metrics.prefetch_issued,
    );
    set(
        "resolver_prefetch_hits",
        "Prefetched names whose next query hit fresh cache",
        metrics.prefetch_hits,
    );
    set(
        "resolver_prefetch_wasted",
        "Prefetched names whose next query still missed",
        metrics.prefetch_wasted,
    );
    let resolve_id = reg.histogram(
        "resolve_latency_ms",
        "Modelled resolution latency per query in virtual milliseconds",
    );
    reg.hist_mut(resolve_id).merge(resolve_latency);
    let fast_id = reg.histogram(
        "wall_latency_fast_ms",
        "Wall-clock latency per wire fast-lane hit in milliseconds",
    );
    reg.hist_mut(fast_id).merge(obs.fast_histogram());
    let slow_id = reg.histogram(
        "wall_latency_slow_ms",
        "Wall-clock latency per slow-path resolution in milliseconds",
    );
    reg.hist_mut(slow_id).merge(obs.slow_histogram());
    // The pre-split series, kept as the union of both lanes so existing
    // dashboards keep a total-latency view.
    let wall_id = reg.histogram(
        "wall_latency_ms",
        "Wall-clock resolution latency per client query in milliseconds (both lanes)",
    );
    reg.hist_mut(wall_id).merge(obs.fast_histogram());
    reg.hist_mut(wall_id).merge(obs.slow_histogram());
    reg
}

/// Encodes `response`, also returning the byte offset of every record's
/// TTL field (for wire-cache compilation); when the message exceeds the
/// wire limit (oversized answer sets), falls back to a TC-bit truncated
/// reply carrying the header *and the question section*, so the client
/// learns to retry instead of timing out against silence. The `bool` is
/// `true` for the truncated fallback. Returns `None` only when even the
/// fallback cannot be encoded.
fn encode_or_truncate(
    query: &Message,
    response: &Message,
    truncated: &AtomicU64,
) -> Option<(Vec<u8>, Vec<u32>, bool)> {
    if let Ok((bytes, offsets)) = wire::encode_with_ttl_offsets(response) {
        return Some((bytes, offsets, false));
    }
    truncated.fetch_add(1, Ordering::Relaxed);
    let mut tc = Message::response_to(query);
    tc.header.recursion_available = true;
    tc.header.rcode = response.header.rcode;
    tc.header.truncated = true;
    wire::encode_with_ttl_offsets(&tc)
        .ok()
        .map(|(bytes, offsets)| (bytes, offsets, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_core::{Question, RData, Record, RecordType, Ttl};
    use std::net::Ipv4Addr;

    #[test]
    fn oversized_response_degrades_to_truncated_reply() {
        let query = Message::query(9, Question::new("big.test".parse().unwrap(), RecordType::A));
        let mut response = Message::response_to(&query);
        // Far beyond MAX_MESSAGE_LEN once encoded.
        for i in 0..2_000u32 {
            response.answers.push(Record::new(
                "big.test".parse().unwrap(),
                Ttl::from_hours(1),
                RData::A(Ipv4Addr::from(i)),
            ));
        }
        assert!(wire::encode(&response).is_err(), "fixture must overflow");

        let counter = AtomicU64::new(0);
        let (bytes, offsets, was_truncated) =
            encode_or_truncate(&query, &response, &counter).expect("fallback encodes");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert!(was_truncated);
        assert!(offsets.is_empty(), "TC fallback carries no records");
        let decoded = wire::decode(&bytes).unwrap();
        assert!(decoded.header.truncated);
        assert_eq!(decoded.header.id, 9);
        assert!(decoded.answers.is_empty());
        // The TC reply must still carry the question section: a retrying
        // client matches on it, and 0x20-style clients verify it.
        assert_eq!(
            decoded.question().expect("question survives truncation"),
            query.question().unwrap()
        );

        // A well-sized response passes through untouched, with one TTL
        // offset per record.
        let mut small = Message::response_to(&query);
        small.answers.push(Record::new(
            "big.test".parse().unwrap(),
            Ttl::from_hours(1),
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        let (bytes, offsets, was_truncated) = encode_or_truncate(&query, &small, &counter).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert!(!was_truncated);
        assert_eq!(offsets.len(), 1);
        assert!(!wire::decode(&bytes).unwrap().header.truncated);
    }

    #[test]
    fn health_records_first_error() {
        let health = Health::default();
        assert!(!health.failed.load(Ordering::Relaxed));
        health.record("recv", &io::Error::other("boom"));
        assert!(health.failed.load(Ordering::Relaxed));
        assert!(health
            .last_error
            .lock()
            .unwrap()
            .as_deref()
            .unwrap()
            .contains("boom"));
    }

    #[test]
    fn empty_pool_is_rejected() {
        struct Dead;
        impl Upstream for Dead {
            fn query(
                &mut self,
                _server: Ipv4Addr,
                _query: &Message,
                _now: dns_core::SimTime,
            ) -> Option<Message> {
                None
            }
        }
        let cs = CachingServer::new(
            dns_resolver::ResolverConfig::vanilla(),
            dns_resolver::RootHints::new(vec![(
                "a.root-servers.net".parse().unwrap(),
                Ipv4Addr::new(198, 41, 0, 4),
            )]),
        );
        let err = Resolved::spawn_pool(cs, Vec::<Dead>::new(), "127.0.0.1:0").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        let cs = CachingServer::new(
            dns_resolver::ResolverConfig::vanilla(),
            dns_resolver::RootHints::new(vec![(
                "a.root-servers.net".parse().unwrap(),
                Ipv4Addr::new(198, 41, 0, 4),
            )]),
        );
        let err = Resolved::spawn_io(
            vec![cs],
            vec![Dead],
            Vec::<crate::packetio::ChannelPacketIo>::new(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
