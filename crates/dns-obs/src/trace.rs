//! Structured per-query traces.
//!
//! A [`QueryTrace`] is a bounded ring buffer of typed [`TraceEvent`]s
//! covering one resolution: cache probes, infrastructure lookups,
//! upstream sends/retries/backoffs, referral chasing, renewals and the
//! final outcome. The buffer is pre-allocated at construction; pushing
//! events re-uses slots (`Name` values are refcounted, so cloning one
//! into an event is a pointer bump, not an allocation — except the
//! first time a slot is written). [`QueryTrace::explain`] renders the
//! sequence as a numbered, human-readable transcript for debugging a
//! single resolution.

use dns_core::{Name, RecordType, ResponseKind, SimTime};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// How a traced resolution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// A positive answer (possibly via a CNAME chain).
    Answer,
    /// Authenticated denial: the name does not exist.
    NxDomain,
    /// The name exists but holds no records of the queried type.
    NoData,
    /// Resolution failed (no usable infrastructure, all retries lost,
    /// or upstream error).
    Fail,
}

/// One step of a resolution, as recorded by the resolver's hooks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Resolution started for `qname`/`rtype` at virtual time `at`.
    Query {
        /// The queried name.
        qname: Name,
        /// The queried record type.
        rtype: RecordType,
        /// Virtual time the query arrived.
        at: SimTime,
    },
    /// The positive cache answered directly.
    CacheHit,
    /// The negative cache answered (cached NXDOMAIN/NoData).
    NegativeCacheHit,
    /// Neither cache had the answer; a fetch begins.
    CacheMiss,
    /// Infrastructure lookup chose `zone` as the deepest usable ancestor.
    InfraStart {
        /// The zone whose servers will be asked first.
        zone: Name,
    },
    /// No usable infrastructure records — resolution cannot proceed.
    NoInfra,
    /// A query datagram was sent to `server`.
    UpstreamSend {
        /// Target server address.
        server: Ipv4Addr,
    },
    /// `server` did not answer within the per-try timeout.
    UpstreamTimeout {
        /// Target server address.
        server: Ipv4Addr,
    },
    /// `server` answered, but the ID or question did not match.
    UpstreamMismatch {
        /// Target server address.
        server: Ipv4Addr,
    },
    /// `server` answered usefully.
    UpstreamResponse {
        /// Responding server address.
        server: Ipv4Addr,
        /// How the resolver classified the response.
        kind: ResponseKind,
    },
    /// All servers failed in retry round `round`; backing off.
    Backoff {
        /// Zero-based retry round that just failed.
        round: u32,
        /// Virtual milliseconds waited before the next round.
        wait_ms: u64,
    },
    /// The retry budget ran out before any server answered.
    DeadlineExhausted,
    /// A referral moved the chase down to `child`.
    Referral {
        /// The child zone delegated to.
        child: Name,
    },
    /// A background renewal for `zone`'s infrastructure completed.
    Renewal {
        /// The zone being renewed.
        zone: Name,
        /// Whether the renewal produced fresh records.
        ok: bool,
    },
    /// The demand fetch failed, but an expired record still inside the
    /// serve-stale window answered instead (RFC 8767).
    StaleServed {
        /// The stale entry's original absolute expiry.
        expired_at: SimTime,
    },
    /// The resolution finished.
    Outcome {
        /// Final classification.
        outcome: TraceOutcome,
        /// Whether the answer came straight from cache.
        from_cache: bool,
        /// Virtual milliseconds the resolution took.
        latency_ms: u64,
    },
}

impl TraceEvent {
    fn render(&self, out: &mut String) {
        match self {
            TraceEvent::Query { qname, rtype, at } => {
                let _ = write!(out, "query {qname} {rtype:?} at {at}");
            }
            TraceEvent::CacheHit => out.push_str("cache hit"),
            TraceEvent::NegativeCacheHit => out.push_str("negative cache hit"),
            TraceEvent::CacheMiss => out.push_str("cache miss"),
            TraceEvent::InfraStart { zone } => {
                let _ = write!(out, "infra: deepest usable ancestor {zone}");
            }
            TraceEvent::NoInfra => out.push_str("infra: no usable servers"),
            TraceEvent::UpstreamSend { server } => {
                let _ = write!(out, "send -> {server}");
            }
            TraceEvent::UpstreamTimeout { server } => {
                let _ = write!(out, "timeout <- {server}");
            }
            TraceEvent::UpstreamMismatch { server } => {
                let _ = write!(out, "mismatch <- {server}");
            }
            TraceEvent::UpstreamResponse { server, kind } => {
                let _ = write!(out, "response <- {server}: {kind:?}");
            }
            TraceEvent::Backoff { round, wait_ms } => {
                let _ = write!(out, "backoff after round {round}: wait {wait_ms}ms");
            }
            TraceEvent::DeadlineExhausted => out.push_str("deadline exhausted"),
            TraceEvent::Referral { child } => {
                let _ = write!(out, "referral -> {child}");
            }
            TraceEvent::Renewal { zone, ok } => {
                let _ = write!(
                    out,
                    "renewal {zone}: {}",
                    if *ok { "refreshed" } else { "failed" }
                );
            }
            TraceEvent::StaleServed { expired_at } => {
                let _ = write!(out, "stale serve (expired at {expired_at})");
            }
            TraceEvent::Outcome {
                outcome,
                from_cache,
                latency_ms,
            } => {
                let _ = write!(
                    out,
                    "outcome {outcome:?} ({}) in {latency_ms}ms",
                    if *from_cache { "cache" } else { "fetched" }
                );
            }
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s for one resolution.
///
/// Capacity is fixed at construction; when it overflows, the *oldest*
/// events are dropped and counted, so the tail of a pathological
/// referral chase stays visible. [`QueryTrace::begin`] resets the
/// buffer without releasing its storage, so a long-lived trace attached
/// to a resolver re-uses the same allocation across queries.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    events: Vec<TraceEvent>,
    start: usize,
    dropped: u64,
}

/// Default event capacity: enough for a full-depth referral chase with
/// retries at every level.
pub const DEFAULT_TRACE_CAPACITY: usize = 128;

impl Default for QueryTrace {
    fn default() -> Self {
        QueryTrace::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl QueryTrace {
    /// A trace holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        QueryTrace {
            events: Vec::with_capacity(capacity.max(1)),
            start: 0,
            dropped: 0,
        }
    }

    /// Clears the trace for a new resolution, retaining its storage.
    pub fn begin(&mut self) {
        self.events.clear();
        self.start = 0;
        self.dropped = 0;
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.events.capacity() {
            self.events.push(event);
        } else {
            self.events[self.start] = event;
            self.start = (self.start + 1) % self.events.len();
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded since the last `begin`.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by ring overflow since the last `begin`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events in arrival order (oldest surviving first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.events.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// Renders the trace as a numbered human-readable transcript:
    ///
    /// ```text
    /// -- query trace (7 events) --
    ///  1. query www.example. A at 0d00:00:00
    ///  2. cache miss
    ///  ...
    /// ```
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "-- query trace ({} events) --", self.events.len());
        if self.dropped > 0 {
            let _ = writeln!(out, " ({} earlier events dropped)", self.dropped);
        }
        for (i, ev) in self.events().enumerate() {
            let _ = write!(out, "{:2}. ", i + 1);
            ev.render(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn explain_renders_in_order() {
        let mut t = QueryTrace::with_capacity(8);
        t.push(TraceEvent::Query {
            qname: name("www.example"),
            rtype: RecordType::A,
            at: SimTime::ZERO,
        });
        t.push(TraceEvent::CacheMiss);
        t.push(TraceEvent::InfraStart {
            zone: name("example"),
        });
        t.push(TraceEvent::UpstreamSend {
            server: Ipv4Addr::new(192, 0, 2, 1),
        });
        t.push(TraceEvent::UpstreamResponse {
            server: Ipv4Addr::new(192, 0, 2, 1),
            kind: ResponseKind::Answer,
        });
        t.push(TraceEvent::Outcome {
            outcome: TraceOutcome::Answer,
            from_cache: false,
            latency_ms: 40,
        });
        let text = t.explain();
        assert!(text.starts_with("-- query trace (6 events) --\n"), "{text}");
        assert!(
            text.contains(" 1. query www.example. A at 0d00:00:00"),
            "{text}"
        );
        assert!(text.contains(" 4. send -> 192.0.2.1"), "{text}");
        assert!(
            text.contains(" 6. outcome Answer (fetched) in 40ms"),
            "{text}"
        );
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = QueryTrace::with_capacity(3);
        for round in 0..5u32 {
            t.push(TraceEvent::Backoff {
                round,
                wait_ms: 100,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let rounds: Vec<u32> = t
            .events()
            .map(|e| match e {
                TraceEvent::Backoff { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![2, 3, 4]);
        assert!(t.explain().contains("(2 earlier events dropped)"));
    }

    #[test]
    fn begin_resets_without_shrinking() {
        let mut t = QueryTrace::with_capacity(4);
        for _ in 0..6 {
            t.push(TraceEvent::CacheHit);
        }
        let cap = t.events.capacity();
        t.begin();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events.capacity(), cap);
    }
}
