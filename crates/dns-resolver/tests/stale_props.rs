//! Property suite for the RFC 8767 serve-stale window.
//!
//! Three laws, over randomised TTLs, windows, probe offsets and query
//! scripts:
//!
//! 1. a stale answer is never served at or past `expiry + max_stale`;
//! 2. TTLs on stale answers are clamped — never past the advertised
//!    stale TTL (30 s), never above the record's original TTL, never 0;
//! 3. with [`StalePolicy`] off the resolver is step-for-step identical
//!    to a resolver built without stale knobs, and no stale counter
//!    ever moves.

use dns_auth::AuthServer;
use dns_core::{
    Delegation, Message, Name, Question, RData, Record, RecordType, SimDuration, SimTime, Ttl,
    ZoneBuilder,
};
use dns_resolver::{CachingServer, ResolverConfig, RootHints, StalePolicy, Upstream};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The advertised TTL cap on stale answers (RFC 8767 §5.2).
const STALE_ANSWER_TTL_SECS: u32 = 30;

fn name(s: &str) -> Name {
    s.parse().unwrap()
}

/// A miniature internet with a global blackout switch.
struct MiniNet {
    servers: HashMap<Ipv4Addr, AuthServer>,
    dead: bool,
}

impl MiniNet {
    fn add(&mut self, server: AuthServer) {
        self.servers.insert(server.addr(), server);
    }
}

impl Upstream for MiniNet {
    fn query(&mut self, server: Ipv4Addr, query: &Message, _now: SimTime) -> Option<Message> {
        if self.dead {
            return None;
        }
        self.servers.get(&server).map(|s| s.handle_query(query))
    }
}

/// Builds root → `test` → `z.test` with `www.z.test A` at `answer_ttl`.
fn build_net(answer_ttl: Ttl) -> (MiniNet, RootHints) {
    let mut net = MiniNet {
        servers: HashMap::new(),
        dead: false,
    };
    let root_ip = Ipv4Addr::new(10, 0, 0, 1);
    let tld_ip = Ipv4Addr::new(10, 0, 1, 1);
    let sld_ip = Ipv4Addr::new(10, 0, 2, 1);

    let root_zone = ZoneBuilder::new(Name::root())
        .ns(name("a.root-servers.net"), root_ip, Ttl::from_days(7))
        .delegate(Delegation {
            child: name("test"),
            ns_names: vec![name("ns.test")],
            ns_ttl: Ttl::from_days(2),
            glue: vec![Record::new(
                name("ns.test"),
                Ttl::from_days(2),
                RData::A(tld_ip),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut root_srv = AuthServer::new(name("a.root-servers.net"), root_ip);
    root_srv.add_zone(root_zone);
    net.add(root_srv);

    let tld_zone = ZoneBuilder::new(name("test"))
        .ns(name("ns.test"), tld_ip, Ttl::from_days(2))
        .delegate(Delegation {
            child: name("z.test"),
            ns_names: vec![name("ns.z.test")],
            ns_ttl: Ttl::from_hours(12),
            glue: vec![Record::new(
                name("ns.z.test"),
                Ttl::from_hours(12),
                RData::A(sld_ip),
            )],
            ds: Vec::new(),
        })
        .build()
        .unwrap();
    let mut tld_srv = AuthServer::new(name("ns.test"), tld_ip);
    tld_srv.add_zone(tld_zone);
    net.add(tld_srv);

    let sld_zone = ZoneBuilder::new(name("z.test"))
        .ns(name("ns.z.test"), sld_ip, Ttl::from_hours(12))
        .a(name("www.z.test"), Ipv4Addr::new(10, 0, 2, 80), answer_ttl)
        .build()
        .unwrap();
    let mut sld_srv = AuthServer::new(name("ns.z.test"), sld_ip);
    sld_srv.add_zone(sld_zone);
    net.add(sld_srv);

    let hints = RootHints::new(vec![(name("a.root-servers.net"), root_ip)]);
    (net, hints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Laws 1 and 2: after a warm resolve and a total blackout, probing
    /// at `expiry + offset` serves a clamped stale answer strictly
    /// inside the window and a hard failure at or past its edge.
    #[test]
    fn stale_window_boundary_and_ttl_clamp(
        ttl_secs in 1u32..86_400,
        window_secs in 60u64..172_800,
        offset in 0u64..260_000,
    ) {
        let ttl = Ttl::from_secs(ttl_secs);
        let (mut net, hints) = build_net(ttl);
        let config = ResolverConfig::vanilla()
            .to_builder()
            .max_stale(SimDuration::from_secs(window_secs))
            .build();
        let mut cs = CachingServer::new(config, hints);
        let www = name("www.z.test");

        let t0 = SimTime::from_secs(1_000);
        let warm = cs.resolve_a(&www, t0, &mut net);
        prop_assert!(!warm.is_failure(), "warm resolve must answer: {warm:?}");

        net.dead = true;
        let expiry = t0 + SimDuration::from_secs(u64::from(ttl_secs));
        let probe = expiry + SimDuration::from_secs(offset);
        let out = cs.resolve_a(&www, probe, &mut net);

        if offset < window_secs {
            let records = match out {
                dns_resolver::Outcome::Answer { ref records, from_cache } => {
                    prop_assert!(from_cache, "stale answers come from cache");
                    records
                }
                ref other => {
                    return Err(TestCaseError::fail(format!(
                        "inside the window the stale answer must serve, got {other:?}"
                    )));
                }
            };
            prop_assert!(!records.is_empty());
            let clamp = ttl_secs.min(STALE_ANSWER_TTL_SECS);
            for r in records {
                prop_assert_eq!(r.ttl().as_secs(), clamp);
                prop_assert!(r.ttl().as_secs() > 0, "stale TTL must not underflow to 0");
            }
            prop_assert_eq!(cs.metrics().stale_served, 1);
            prop_assert_eq!(cs.metrics().stale_expired_unserved, 0);
        } else {
            prop_assert!(
                out.is_failure(),
                "at or past expiry + max_stale nothing may serve, got {:?}", out
            );
            prop_assert_eq!(cs.metrics().stale_served, 0);
        }
    }

    /// Law 3: a resolver whose config carries `StalePolicy::off()`
    /// explicitly is step-for-step identical to one built without
    /// touching the stale knobs — same outcomes, same full metrics —
    /// across random query/blackout/revive scripts, and the stale
    /// counters never move.
    #[test]
    fn stale_off_is_step_identical(
        seed in any::<u64>(),
        script in proptest::collection::vec((0u8..4, 1u64..40_000), 1..40),
    ) {
        let ttl = Ttl::from_mins(10);
        let (mut net_a, hints_a) = build_net(ttl);
        let (mut net_b, hints_b) = build_net(ttl);
        let plain = ResolverConfig::vanilla().to_builder().seed(seed).build();
        let explicit_off = ResolverConfig::vanilla()
            .to_builder()
            .seed(seed)
            .stale(StalePolicy::off())
            .build();
        prop_assert_eq!(plain, explicit_off);
        let mut a = CachingServer::new(plain, hints_a);
        let mut b = CachingServer::new(explicit_off, hints_b);

        let mut now = 0u64;
        for (action, dt) in script {
            now += dt;
            let at = SimTime::from_secs(now);
            match action {
                1 => {
                    net_a.dead = true;
                    net_b.dead = true;
                }
                2 => {
                    net_a.dead = false;
                    net_b.dead = false;
                }
                _ => {
                    let q = Question::new(name("www.z.test"), RecordType::A);
                    let oa = a.resolve(&q, at, &mut net_a);
                    let ob = b.resolve(&q, at, &mut net_b);
                    prop_assert_eq!(format!("{oa:?}"), format!("{ob:?}"));
                }
            }
        }
        prop_assert_eq!(format!("{:?}", a.metrics()), format!("{:?}", b.metrics()));
        let m = a.metrics();
        prop_assert_eq!(m.stale_served, 0);
        prop_assert_eq!(m.stale_expired_unserved, 0);
        prop_assert_eq!(m.refresh_ahead, 0);
        prop_assert_eq!(m.prefetch_issued, 0);
        prop_assert_eq!(m.prefetch_hits, 0);
        prop_assert_eq!(m.prefetch_wasted, 0);
    }
}
