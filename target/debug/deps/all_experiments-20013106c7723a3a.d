/root/repo/target/debug/deps/all_experiments-20013106c7723a3a.d: crates/dns-bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-20013106c7723a3a.rmeta: crates/dns-bench/src/bin/all_experiments.rs Cargo.toml

crates/dns-bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
