/root/repo/target/debug/deps/proptests-5ff411956897a42f.d: crates/dns-resolver/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5ff411956897a42f.rmeta: crates/dns-resolver/tests/proptests.rs Cargo.toml

crates/dns-resolver/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
