/root/repo/target/debug/deps/dns_playground-12c2804619fe12ef.d: crates/dns-netd/src/bin/dns-playground.rs

/root/repo/target/debug/deps/dns_playground-12c2804619fe12ef: crates/dns-netd/src/bin/dns-playground.rs

crates/dns-netd/src/bin/dns-playground.rs:
