//! Golden transcript for the query-trace subsystem: one seeded
//! cold-cache resolution through the simulated network, with exactly one
//! packet lost to deterministic loss (forcing one retry), must render
//! the same `explain()` text byte-for-byte forever.
//!
//! Everything in the trace is virtual: time is [`SimTime`], loss is the
//! xorshift coin in [`dns_sim::SimNet`], and retry jitter comes from the
//! resolver's own seeded RNG — so this transcript is a contract, not a
//! flaky snapshot. When a change *intentionally* alters resolution
//! behaviour, re-capture with
//! `cargo test -q --test trace_golden -- --nocapture` and explain the
//! change in the PR description.

use dns_resilience::prelude::*;
use dns_resilience::resolver::Outcome;

/// Loss seed chosen so the scripted resolution loses exactly one packet
/// (see `find_seed` below for the scan that picked it).
const LOSS_SEED: u64 = 6;
const LOSS_RATE: f64 = 0.2;

fn scripted_resolution(loss_seed: u64) -> (CachingServer, Outcome) {
    let universe = UniverseSpec::small().build(7);
    let farm = ServerFarm::build(&universe, None);
    let mut net = SimNet::new(farm);
    net.set_loss(LOSS_RATE, loss_seed);

    let config = ResolverConfig::builder()
        .retry(RetryPolicy::standard())
        .seed(1)
        .build();
    let hints = RootHints::new(universe.root_servers().to_vec());
    let mut cs = CachingServer::new(config, hints);
    cs.obs_mut().enable_trace();

    // The most popular name in the generated universe — deep enough to
    // need a referral chase from a cold cache.
    let (qname, _) = universe.query_targets().into_iter().next().unwrap();
    let question = Question::new(qname, RecordType::A);
    let outcome = cs.resolve(&question, SimTime::ZERO, &mut net);
    (cs, outcome)
}

#[test]
fn cold_cache_resolution_trace_is_byte_identical() {
    let (cs, outcome) = scripted_resolution(LOSS_SEED);
    assert!(
        matches!(outcome, Outcome::Answer { .. }),
        "scripted resolution must answer: {outcome:?}"
    );
    let metrics = cs.metrics();
    assert_eq!(
        metrics.retries, 1,
        "scripted resolution must retry exactly once: {metrics}"
    );
    let explain = cs.obs().trace().unwrap().explain();
    println!("{explain}");
    assert_eq!(explain, GOLDEN_EXPLAIN);
}

const GOLDEN_EXPLAIN: &str = "\
-- query trace (17 events) --
 1. query www.z00000.t025. A at 0d00:00:00
 2. cache miss
 3. infra: deepest usable ancestor .
 4. send -> 10.0.0.1
 5. response <- 10.0.0.1: Referral
 6. referral -> t025.
 7. send -> 10.0.0.65
 8. response <- 10.0.0.65: Referral
 9. referral -> z00000.t025.
10. send -> 10.0.0.102
11. timeout <- 10.0.0.102
12. send -> 10.0.0.103
13. timeout <- 10.0.0.103
14. backoff after round 0: wait 138ms
15. send -> 10.0.0.102
16. response <- 10.0.0.102: Answer
17. outcome Answer (fetched) in 2258ms
";

/// Scans loss seeds for one producing exactly one retry (run manually
/// with `--ignored --nocapture` when re-capturing the golden above).
#[test]
#[ignore]
fn find_seed() {
    for seed in 0..64 {
        let (cs, outcome) = scripted_resolution(seed);
        let m = cs.metrics();
        println!(
            "seed {seed}: retries={} answered={}",
            m.retries,
            matches!(outcome, Outcome::Answer { .. })
        );
    }
}
