//! Observability exposition tests: the `CHAOS TXT metrics.bind.`
//! snapshot served over real UDP must reconcile with the daemon's own
//! in-process counters, and the Prometheus rendering must be valid
//! exposition text.

use dns_core::{Question, Rcode, RecordClass, RecordType, ResponseKind};
use dns_netd::{client, playground, FaultInjector, Resolved, UdpUpstream, CHAOS_METRICS_NAME};
use dns_resolver::{CachingServer, ResolverConfig, RetryPolicy};
use std::collections::HashMap;
use std::time::Duration;

fn client_timeout() -> Duration {
    Duration::from_secs(5)
}

/// Small backoffs so the blackout-induced SERVFAIL arrives quickly.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        initial_backoff_ms: 10,
        backoff_multiplier: 2,
        max_backoff_ms: 80,
        jitter_pct: 50,
        deadline_ms: 500,
    }
}

/// Parses the compact `name=value` / `name count=.. sum=.. p50=..`
/// TXT lines into per-metric key→value maps.
fn parse_snapshot(lines: &[String]) -> HashMap<String, HashMap<String, u64>> {
    let mut out = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once('=') {
            if !name.contains(' ') {
                // Counter: `name=value`.
                let mut fields = HashMap::new();
                fields.insert("value".to_string(), value.parse().unwrap());
                out.insert(name.to_string(), fields);
                continue;
            }
        }
        // Histogram: `name count=N sum=S p50=A p90=B p99=C`.
        let mut parts = line.split_whitespace();
        let name = parts.next().unwrap().to_string();
        let fields = parts
            .map(|kv| {
                let (k, v) = kv.split_once('=').unwrap();
                (k.to_string(), v.parse().unwrap())
            })
            .collect();
        out.insert(name, fields);
    }
    out
}

#[test]
fn chaos_snapshot_reconciles_with_daemon_and_resolver_counters() {
    let net = playground::boot().unwrap();
    let mut handles = Vec::new();
    let upstreams: Vec<_> = (0..2)
        .map(|_| {
            let udp = UdpUpstream::with_route(Duration::from_millis(300), net.route_fn()).unwrap();
            let (upstream, handle) = FaultInjector::new(udp, 11);
            handles.push(handle);
            upstream
        })
        .collect();
    let config = ResolverConfig::with_refresh()
        .to_builder()
        .retry(test_retry())
        .seed(3)
        .build();
    let cs = CachingServer::new(config, net.hints.clone());
    let resolver = Resolved::spawn_pool(cs, upstreams, "127.0.0.1:0").unwrap();
    resolver.enable_trace();

    // A full recursive resolution, a negative answer, then a
    // blackout-induced SERVFAIL — three resolutions with three distinct
    // outcomes feeding the metric surface.
    let resp = client::query(
        resolver.addr(),
        &"www.ucla.edu".parse().unwrap(),
        RecordType::A,
        client_timeout(),
    )
    .unwrap();
    assert_eq!(resp.kind(), ResponseKind::Answer);

    let resp = client::query(
        resolver.addr(),
        &"nowhere.ucla.edu".parse().unwrap(),
        RecordType::A,
        client_timeout(),
    )
    .unwrap();
    assert_eq!(resp.header.rcode, Rcode::NxDomain);

    for handle in &handles {
        handle.blackout(&net.top_level_ips(), Duration::from_secs(3600));
    }
    let resp = client::query(
        resolver.addr(),
        &"www.never-seen.com".parse().unwrap(),
        RecordType::A,
        client_timeout(),
    )
    .unwrap();
    assert_eq!(resp.header.rcode, Rcode::ServFail, "blackout must SERVFAIL");

    // Tracing was on: the last resolution must be explainable and end in
    // the failure outcome the client saw.
    let explain = resolver.explain_last().expect("trace for last query");
    assert!(explain.contains("query www.never-seen.com. A"), "{explain}");
    assert!(explain.contains("outcome Fail"), "{explain}");

    // Fetch the CHAOS TXT snapshot over the wire.
    let chaos = Question::with_class(
        CHAOS_METRICS_NAME.parse().unwrap(),
        RecordType::Txt,
        RecordClass::Ch,
    );
    let resp = client::query_question(resolver.addr(), chaos, client_timeout()).unwrap();
    assert_eq!(resp.header.rcode, Rcode::NoError);
    let lines: Vec<String> = resp
        .answers
        .iter()
        .map(|r| {
            assert_eq!(r.class(), RecordClass::Ch);
            match r.rdata() {
                dns_core::RData::Txt(s) => s.clone(),
                other => panic!("expected TXT, got {other:?}"),
            }
        })
        .collect();
    let snapshot = parse_snapshot(&lines);

    // Reconcile with the daemon's in-process view. The snapshot was
    // taken before the CHAOS response itself was sent, so it covers
    // exactly the three IN resolutions; the daemon counts the CHAOS
    // reply only after its send completes (poll briefly — the client can
    // see the reply before the worker's post-send increment lands).
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while resolver.stats().served < 4 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = resolver.stats();
    let metrics = resolver.metrics();
    assert_eq!(snapshot["daemon_served"]["value"], 3);
    assert_eq!(stats.served, 4);
    assert_eq!(snapshot["daemon_send_errors"]["value"], stats.send_errors);
    assert_eq!(snapshot["resolver_queries_in"]["value"], metrics.queries_in);
    assert_eq!(snapshot["resolver_failed_in"]["value"], metrics.failed_in);
    assert_eq!(snapshot["resolver_retries"]["value"], metrics.retries);
    assert!(
        metrics.retries >= 1,
        "blackout retries must be visible: {metrics}"
    );
    // The flood-defense counters are exposed and — with every defense at
    // its default (off) setting — reconcile at exactly zero.
    assert_eq!(
        snapshot["resolver_fetches_clamped"]["value"],
        metrics.fetches_clamped
    );
    assert_eq!(
        snapshot["resolver_flood_suppressed"]["value"],
        metrics.flood_suppressed
    );
    assert_eq!(
        snapshot["resolver_neg_evictions_pressure"]["value"],
        metrics.neg_evictions_pressure
    );
    assert_eq!(metrics.fetches_clamped, 0, "defenses default off");

    // Three distinct names means every IN resolution took the slow path:
    // the slow-lane wall histogram and the modelled histogram saw one
    // observation per resolution, the fast-lane histogram exactly one
    // per wire hit (none here), and the combined series their union.
    assert_eq!(snapshot["resolve_latency_ms"]["count"], metrics.queries_in);
    assert_eq!(
        snapshot["wall_latency_slow_ms"]["count"],
        metrics.queries_in
    );
    assert_eq!(snapshot["wall_latency_fast_ms"]["count"], stats.wire_hits);
    assert_eq!(
        snapshot["wall_latency_ms"]["count"],
        metrics.queries_in + stats.wire_hits
    );
    // The positive answer was compiled into the wire cache, and the
    // snapshot exposes the byte total its budget bounds.
    assert_eq!(snapshot["daemon_wire_bytes"]["value"], stats.wire_bytes);
    assert!(stats.wire_bytes > 0, "compiled answer occupies bytes");
    // The SERVFAIL burned the whole retry deadline in wall time, so the
    // wall p99 cannot be below the virtual cache-hit floor.
    assert!(snapshot["resolve_latency_ms"]["p99"] >= snapshot["resolve_latency_ms"]["p50"]);

    // Non-TXT and unknown CHAOS names are refused, not resolved.
    for question in [
        Question::with_class(
            CHAOS_METRICS_NAME.parse().unwrap(),
            RecordType::A,
            RecordClass::Ch,
        ),
        Question::with_class(
            "version.bind".parse().unwrap(),
            RecordType::Txt,
            RecordClass::Ch,
        ),
    ] {
        let resp = client::query_question(resolver.addr(), question, client_timeout()).unwrap();
        assert_eq!(resp.header.rcode, Rcode::Refused);
        assert!(resp.answers.is_empty());
    }

    // The Prometheus rendering of the same registry is valid exposition
    // text covering every counter plus both histograms.
    let body = resolver.prometheus();
    let series = dns_obs::validate_prometheus_text(&body).expect("valid exposition text");
    assert!(series >= 22, "expected full metric surface, got {series}");
    assert!(body.contains("resolver_queries_in"));
    assert!(body.contains("resolver_fetches_clamped"));
    assert!(body.contains("resolver_flood_suppressed"));
    assert!(body.contains("resolver_neg_evictions_pressure"));
    assert!(body.contains("daemon_wire_bytes"));
    assert!(body.contains("wall_latency_ms_bucket"));
    assert!(body.contains("wall_latency_fast_ms_bucket"));
    assert!(body.contains("wall_latency_slow_ms_bucket"));

    resolver.stop();
    net.stop();
}
