/root/repo/target/debug/deps/failure_injection-6c2f3e80cc1b5ba0.d: crates/dns-sim/tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-6c2f3e80cc1b5ba0.rmeta: crates/dns-sim/tests/failure_injection.rs Cargo.toml

crates/dns-sim/tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
