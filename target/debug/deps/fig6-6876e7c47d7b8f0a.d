/root/repo/target/debug/deps/fig6-6876e7c47d7b8f0a.d: crates/dns-bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-6876e7c47d7b8f0a.rmeta: crates/dns-bench/src/bin/fig6.rs Cargo.toml

crates/dns-bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
