/root/repo/target/debug/deps/trace_tool-a36d763601a1ee8f.d: crates/dns-bench/src/bin/trace_tool.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_tool-a36d763601a1ee8f.rmeta: crates/dns-bench/src/bin/trace_tool.rs Cargo.toml

crates/dns-bench/src/bin/trace_tool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
