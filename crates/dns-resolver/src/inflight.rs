//! Single-flight coalescing: concurrent identical queries share one
//! upstream fetch.
//!
//! The first thread to miss the cache for a `(name, type)` becomes the
//! *leader* and carries a [`FlightToken`]; every thread that arrives while
//! the flight is open blocks on the flight's condvar and receives the
//! leader's published [`Outcome`] verbatim. The table entry is removed
//! before the outcome is published, so a thread arriving after publication
//! starts a fresh flight (and typically hits the now-warm cache instead of
//! fetching).
//!
//! The token publishes [`Outcome::Fail`] on drop: a leader that panics or
//! bails early can never strand its followers on the condvar.

use crate::Outcome;
use dns_core::{Name, RecordType, RrKey};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Completion slot one flight's followers block on.
#[derive(Debug, Default)]
struct FlightSlot {
    outcome: Mutex<Option<Outcome>>,
    cv: Condvar,
}

impl FlightSlot {
    fn complete(&self, outcome: Outcome) {
        let mut guard = self.outcome.lock().unwrap();
        if guard.is_none() {
            *guard = Some(outcome);
        }
        drop(guard);
        self.cv.notify_all();
    }

    fn wait(&self) -> Outcome {
        let mut guard = self.outcome.lock().unwrap();
        loop {
            match guard.as_ref() {
                Some(outcome) => return outcome.clone(),
                None => guard = self.cv.wait(guard).unwrap(),
            }
        }
    }
}

/// The in-flight query table shared by every handle of a
/// [`crate::ShardedCache`].
#[derive(Debug, Default)]
pub(crate) struct InflightTable {
    slots: Mutex<HashMap<RrKey, Arc<FlightSlot>>>,
    /// Open-flight counts per target-zone bucket (the query name's
    /// parent), consulted when a per-zone cap is set.
    zone_counts: Mutex<HashMap<Name, u32>>,
    /// Per-zone open-flight cap; `None` = uncapped.
    zone_cap: Mutex<Option<u32>>,
}

/// What a capped [`InflightTable::join_or_lead`] decided.
pub(crate) enum Admission {
    /// This thread leads the flight.
    Lead(FlightToken),
    /// An identical flight was open; its published outcome.
    Shared(Outcome),
    /// The target zone's inflight cap is exhausted; no flight was opened.
    Suppressed,
}

/// Bucket used for per-zone inflight accounting: the query name's parent
/// (for `nx123.victim.example` → `victim.example`), or the name itself at
/// the root. A flood of random subdomains of one victim zone lands in one
/// bucket regardless of the leaf label.
fn zone_bucket(name: &Name) -> Name {
    name.parent().unwrap_or_else(|| name.clone())
}

impl InflightTable {
    /// Sets the per-zone open-flight cap; `None` removes it.
    pub(crate) fn set_zone_cap(&self, cap: Option<u32>) {
        *self.zone_cap.lock().unwrap() = cap;
    }

    /// Joins the open flight for `(name, rtype)` — blocking until its
    /// leader publishes — opens a new one and returns its token, or
    /// refuses admission when the target zone's cap is exhausted.
    pub(crate) fn join_or_lead(self: &Arc<Self>, name: &Name, rtype: RecordType) -> Admission {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get(&(name, rtype) as &dyn dns_core::RrKeyView) {
            let slot = Arc::clone(slot);
            drop(slots);
            return Admission::Shared(slot.wait());
        }
        let cap = *self.zone_cap.lock().unwrap();
        let bucket = if let Some(cap) = cap {
            let bucket = zone_bucket(name);
            let mut counts = self.zone_counts.lock().unwrap();
            let open = counts.get(&bucket).copied().unwrap_or(0);
            if open >= cap {
                return Admission::Suppressed;
            }
            counts.insert(bucket.clone(), open + 1);
            Some(bucket)
        } else {
            None
        };
        let key = RrKey::new(name.clone(), rtype);
        let slot = Arc::new(FlightSlot::default());
        slots.insert(key.clone(), Arc::clone(&slot));
        drop(slots);
        Admission::Lead(FlightToken {
            flight: Some(OpenFlight {
                key,
                bucket,
                slot,
                table: Arc::clone(self),
            }),
        })
    }

    fn finish(&self, key: &RrKey, bucket: Option<&Name>, slot: &FlightSlot, outcome: Outcome) {
        // Remove before publishing: a thread arriving after publication
        // must open a fresh flight, never observe a completed slot.
        self.slots.lock().unwrap().remove(key);
        if let Some(bucket) = bucket {
            let mut counts = self.zone_counts.lock().unwrap();
            if let Some(open) = counts.get_mut(bucket) {
                *open = open.saturating_sub(1);
                if *open == 0 {
                    counts.remove(bucket);
                }
            }
        }
        slot.complete(outcome);
    }
}

/// Whether this resolution leads its flight or shares a leader's answer.
#[derive(Debug)]
pub enum Flight {
    /// This thread is the leader: perform the fetch, then
    /// [`FlightToken::publish`] the outcome for any followers.
    Lead(FlightToken),
    /// Another thread's flight was already open; its published outcome.
    Shared(Outcome),
    /// The target zone's inflight cap is exhausted: the query is refused
    /// without upstream work (counted as `flood_suppressed`).
    Suppressed,
}

/// Leadership of one in-flight query (see [`Flight::Lead`]).
///
/// Dropping the token without [`FlightToken::publish`] releases followers
/// with [`Outcome::Fail`].
#[derive(Debug)]
pub struct FlightToken {
    flight: Option<OpenFlight>,
}

/// The bookkeeping a leading flight must release exactly once: its slot
/// key, the zone bucket charged against the inflight cap, the followers'
/// slot, and the owning table.
#[derive(Debug)]
struct OpenFlight {
    key: RrKey,
    bucket: Option<Name>,
    slot: Arc<FlightSlot>,
    table: Arc<InflightTable>,
}

impl FlightToken {
    /// A token with no followers, for backends that never coalesce
    /// ([`crate::LocalBackend`]). Publish and drop are no-ops.
    pub fn solo() -> Self {
        FlightToken { flight: None }
    }

    /// Publishes the leader's outcome, waking every follower.
    pub fn publish(mut self, outcome: &Outcome) {
        if let Some(f) = self.flight.take() {
            f.table
                .finish(&f.key, f.bucket.as_ref(), &f.slot, outcome.clone());
        }
    }
}

impl Drop for FlightToken {
    fn drop(&mut self) {
        if let Some(f) = self.flight.take() {
            f.table
                .finish(&f.key, f.bucket.as_ref(), &f.slot, Outcome::Fail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn lead(table: &Arc<InflightTable>, n: &str, rtype: RecordType) -> FlightToken {
        match table.join_or_lead(&name(n), rtype) {
            Admission::Lead(t) => t,
            Admission::Shared(_) => panic!("expected to lead, flight was shared"),
            Admission::Suppressed => panic!("expected to lead, admission suppressed"),
        }
    }

    #[test]
    fn leader_publishes_to_followers() {
        let table = Arc::new(InflightTable::default());
        let token = lead(&table, "www.x.com", RecordType::A);
        let follower = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.join_or_lead(&name("www.x.com"), RecordType::A))
        };
        // Give the follower a chance to block on the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        token.publish(&Outcome::NxDomain { from_cache: false });
        match follower.join().unwrap() {
            Admission::Shared(Outcome::NxDomain { from_cache: false }) => {}
            Admission::Shared(other) => panic!("follower saw {other:?}"),
            _ => panic!("follower did not share"),
        }
        // The table entry is gone: the next arrival leads a fresh flight.
        let _relead = lead(&table, "www.x.com", RecordType::A);
    }

    #[test]
    fn dropped_token_fails_followers() {
        let table = Arc::new(InflightTable::default());
        let token = lead(&table, "a.x", RecordType::A);
        let follower = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.join_or_lead(&name("a.x"), RecordType::A))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(token);
        assert!(matches!(
            follower.join().unwrap(),
            Admission::Shared(Outcome::Fail)
        ));
    }

    #[test]
    fn distinct_questions_do_not_coalesce() {
        let table = Arc::new(InflightTable::default());
        let _a = lead(&table, "a.x", RecordType::A);
        let _b = lead(&table, "b.x", RecordType::A);
        let _c = lead(&table, "a.x", RecordType::Ns);
    }

    #[test]
    fn zone_cap_suppresses_excess_flights_and_releases_on_finish() {
        let table = Arc::new(InflightTable::default());
        table.set_zone_cap(Some(2));
        // Distinct random subdomains of one victim zone share a bucket.
        let t1 = lead(&table, "nx1.victim.x", RecordType::A);
        let _t2 = lead(&table, "nx2.victim.x", RecordType::A);
        assert!(matches!(
            table.join_or_lead(&name("nx3.victim.x"), RecordType::A),
            Admission::Suppressed
        ));
        // Other zones are unaffected.
        let _other = lead(&table, "www.other.x", RecordType::A);
        // Finishing a flight frees a slot in the bucket.
        t1.publish(&Outcome::Fail);
        let _t3 = lead(&table, "nx3.victim.x", RecordType::A);
        // Removing the cap readmits everything.
        table.set_zone_cap(None);
        let _t4 = lead(&table, "nx4.victim.x", RecordType::A);
        let _t5 = lead(&table, "nx5.victim.x", RecordType::A);
    }

    #[test]
    fn solo_token_is_inert() {
        let t = FlightToken::solo();
        t.publish(&Outcome::Fail);
        drop(FlightToken::solo());
    }
}
