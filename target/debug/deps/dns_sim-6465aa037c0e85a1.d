/root/repo/target/debug/deps/dns_sim-6465aa037c0e85a1.d: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libdns_sim-6465aa037c0e85a1.rmeta: crates/dns-sim/src/lib.rs crates/dns-sim/src/attack.rs crates/dns-sim/src/damage.rs crates/dns-sim/src/driver.rs crates/dns-sim/src/experiment.rs crates/dns-sim/src/farm.rs crates/dns-sim/src/gap.rs crates/dns-sim/src/network.rs crates/dns-sim/src/sweep.rs Cargo.toml

crates/dns-sim/src/lib.rs:
crates/dns-sim/src/attack.rs:
crates/dns-sim/src/damage.rs:
crates/dns-sim/src/driver.rs:
crates/dns-sim/src/experiment.rs:
crates/dns-sim/src/farm.rs:
crates/dns-sim/src/gap.rs:
crates/dns-sim/src/network.rs:
crates/dns-sim/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
