/root/repo/target/debug/deps/resolve-016b478a1ae499ae.d: crates/dns-bench/benches/resolve.rs Cargo.toml

/root/repo/target/debug/deps/libresolve-016b478a1ae499ae.rmeta: crates/dns-bench/benches/resolve.rs Cargo.toml

crates/dns-bench/benches/resolve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
