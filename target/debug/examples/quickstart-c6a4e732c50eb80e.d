/root/repo/target/debug/examples/quickstart-c6a4e732c50eb80e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c6a4e732c50eb80e: examples/quickstart.rs

examples/quickstart.rs:
