//! Command-line tool for producing and inspecting the text-format
//! universes and traces that the simulator replays.
//!
//! ```text
//! trace_tool gen-universe <out-file> [--seed N] [--small]
//! trace_tool gen-trace <universe-file> <out-file> [--spec TRC1] [--seed N]
//! trace_tool stats <trace-file>
//! trace_tool inspect <universe-file>
//! ```

use dns_stats::Table;
use dns_trace::io::{load_trace, load_universe, save_trace, save_universe};
use dns_trace::{TraceSpec, UniverseSpec};
use std::fs::File;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  trace_tool gen-universe <out-file> [--seed N] [--small]");
            eprintln!("  trace_tool gen-trace <universe-file> <out-file> [--spec TRC1] [--seed N]");
            eprintln!("  trace_tool stats <trace-file>");
            eprintln!("  trace_tool inspect <universe-file>");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).ok_or("missing command")?;
    match command {
        "gen-universe" => {
            let out = args.get(1).ok_or("missing output file")?;
            let seed: u64 = flag_value(args, "--seed")
                .map(|v| v.parse().map_err(|_| "bad --seed"))
                .transpose()?
                .unwrap_or(dns_bench::UNIVERSE_SEED);
            let spec = if args.iter().any(|a| a == "--small") {
                UniverseSpec::small()
            } else {
                UniverseSpec::standard()
            };
            let universe = spec.build(seed);
            let file = File::create(out).map_err(|e| e.to_string())?;
            save_universe(file, &universe).map_err(|e| e.to_string())?;
            println!("wrote {} ({} zones)", out, universe.zone_count());
            Ok(())
        }
        "gen-trace" => {
            let ufile = args.get(1).ok_or("missing universe file")?;
            let out = args.get(2).ok_or("missing output file")?;
            let spec_name = flag_value(args, "--spec").unwrap_or_else(|| "TRC1".to_string());
            let seed: u64 = flag_value(args, "--seed")
                .map(|v| v.parse().map_err(|_| "bad --seed"))
                .transpose()?
                .unwrap_or(dns_bench::TRACE_SEED);
            let spec = TraceSpec::all()
                .into_iter()
                .find(|s| s.name == spec_name)
                .or_else(|| (spec_name == "DEMO").then(TraceSpec::demo))
                .ok_or_else(|| format!("unknown spec {spec_name:?} (TRC1..TRC6, DEMO)"))?;
            let universe = load_universe(File::open(ufile).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let trace = spec.generate(&universe, seed);
            let file = File::create(out).map_err(|e| e.to_string())?;
            save_trace(file, &trace).map_err(|e| e.to_string())?;
            println!("wrote {} ({} queries)", out, trace.queries.len());
            Ok(())
        }
        "stats" => {
            let tfile = args.get(1).ok_or("missing trace file")?;
            let trace = load_trace(File::open(tfile).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let stats = trace.stats();
            let mut table = Table::new(vec!["field", "value"]);
            table.row(vec!["name".into(), stats.name.clone()]);
            table.row(vec!["days".into(), stats.days.to_string()]);
            table.row(vec!["clients".into(), stats.clients.to_string()]);
            table.row(vec!["requests in".into(), stats.requests_in.to_string()]);
            table.row(vec![
                "distinct names".into(),
                stats.distinct_names.to_string(),
            ]);
            table.row(vec![
                "distinct zones".into(),
                stats.distinct_zones.to_string(),
            ]);
            print!("{table}");
            Ok(())
        }
        "inspect" => {
            let ufile = args.get(1).ok_or("missing universe file")?;
            let universe = load_universe(File::open(ufile).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            let tlds = universe
                .zones()
                .iter()
                .filter(|z| z.apex.label_count() == 1)
                .count();
            let slds = universe
                .zones()
                .iter()
                .filter(|z| z.apex.label_count() == 2)
                .count();
            let deep = universe.zone_count() - 1 - tlds - slds;
            println!("{universe}");
            println!("  TLDs: {tlds}, second-level: {slds}, deeper: {deep}");
            println!("  servers: {}", universe.server_assignments().len());
            println!("  queryable names: {}", universe.query_targets().len());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
