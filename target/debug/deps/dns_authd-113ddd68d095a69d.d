/root/repo/target/debug/deps/dns_authd-113ddd68d095a69d.d: crates/dns-netd/src/bin/dns-authd.rs

/root/repo/target/debug/deps/dns_authd-113ddd68d095a69d: crates/dns-netd/src/bin/dns-authd.rs

crates/dns-netd/src/bin/dns-authd.rs:
