/root/repo/target/debug/examples/resilience_tuning-f299978549ace370.d: examples/resilience_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libresilience_tuning-f299978549ace370.rmeta: examples/resilience_tuning.rs Cargo.toml

examples/resilience_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
