/root/repo/target/debug/deps/dns_dig-d37478df335de6be.d: crates/dns-netd/src/bin/dns-dig.rs

/root/repo/target/debug/deps/dns_dig-d37478df335de6be: crates/dns-netd/src/bin/dns-dig.rs

crates/dns-netd/src/bin/dns-dig.rs:
