//! DDoS attack scenarios: black-outs of zone server sets over intervals.

use dns_core::{Name, SimDuration, SimTime};
use dns_trace::Universe;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// One black-out: every authoritative server of every listed zone stops
/// answering during `[start, start + duration)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blackout {
    /// Apexes of the attacked zones.
    pub zones: Vec<Name>,
    /// Attack onset.
    pub start: SimTime,
    /// Attack length.
    pub duration: SimDuration,
}

impl Blackout {
    /// End of the black-out (exclusive).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// A DDoS scenario: one or more black-outs.
///
/// The paper's headline experiment — "a DDoS attack completely blocks the
/// queries sent to the root zone and the top level domains" at the start
/// of day 7 — is [`AttackScenario::root_and_tlds`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackScenario {
    blackouts: Vec<Blackout>,
}

impl AttackScenario {
    /// An empty scenario (no attack).
    pub fn none() -> Self {
        AttackScenario::default()
    }

    /// The paper's evaluation scenario: root + every TLD, blacked out for
    /// `duration` starting at `start`. Zone resolution happens at compile
    /// time against the universe.
    pub fn root_and_tlds(start: SimTime, duration: SimDuration) -> Self {
        AttackScenario {
            blackouts: vec![Blackout {
                zones: Vec::new(), // marker: filled in at compile time
                start,
                duration,
            }],
        }
    }

    /// A scenario attacking an explicit zone set.
    pub fn zones(zones: Vec<Name>, start: SimTime, duration: SimDuration) -> Self {
        AttackScenario {
            blackouts: vec![Blackout {
                zones,
                start,
                duration,
            }],
        }
    }

    /// Adds another black-out.
    pub fn and(mut self, blackout: Blackout) -> Self {
        self.blackouts.push(blackout);
        self
    }

    /// The configured black-outs.
    pub fn blackouts(&self) -> &[Blackout] {
        &self.blackouts
    }

    /// Resolves zone apexes to server addresses against `universe`.
    ///
    /// A black-out with an empty zone list is the root-and-TLDs marker and
    /// expands to [`Universe::root_and_tld_apexes`].
    pub fn compile(&self, universe: &Universe) -> CompiledAttack {
        let mut dead: HashMap<Ipv4Addr, Vec<(SimTime, SimTime)>> = HashMap::new();
        for b in &self.blackouts {
            let zones: Vec<Name> = if b.zones.is_empty() {
                universe.root_and_tld_apexes()
            } else {
                b.zones.clone()
            };
            for apex in zones {
                let Some(spec) = universe.get(&apex) else {
                    continue;
                };
                for (_, addr) in &spec.ns {
                    dead.entry(*addr).or_default().push((b.start, b.end()));
                }
            }
        }
        for intervals in dead.values_mut() {
            intervals.sort();
            intervals.dedup();
        }
        CompiledAttack { dead }
    }
}

impl fmt::Display for AttackScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attack scenario ({} blackouts)", self.blackouts.len())
    }
}

/// An [`AttackScenario`] resolved to concrete addresses and intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledAttack {
    dead: HashMap<Ipv4Addr, Vec<(SimTime, SimTime)>>,
}

impl CompiledAttack {
    /// No attack.
    pub fn none() -> Self {
        CompiledAttack::default()
    }

    /// Whether `addr` is blacked out at `now`.
    pub fn is_dead(&self, addr: Ipv4Addr, now: SimTime) -> bool {
        self.dead
            .get(&addr)
            .is_some_and(|iv| iv.iter().any(|&(s, e)| s <= now && now < e))
    }

    /// Number of attacked addresses.
    pub fn target_count(&self) -> usize {
        self.dead.len()
    }
}

impl fmt::Display for CompiledAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compiled attack ({} targets)", self.dead.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns_trace::UniverseSpec;

    fn universe() -> Universe {
        UniverseSpec::small().build(7)
    }

    #[test]
    fn root_and_tlds_targets_every_top_level_server() {
        let u = universe();
        let attack =
            AttackScenario::root_and_tlds(SimTime::from_days(6), SimDuration::from_hours(6))
                .compile(&u);
        let expected: usize = u
            .root_and_tld_apexes()
            .iter()
            .map(|a| u.get(a).unwrap().ns.len())
            .sum();
        assert_eq!(attack.target_count(), expected);
    }

    #[test]
    fn interval_boundaries_are_half_open() {
        let u = universe();
        let start = SimTime::from_days(6);
        let attack = AttackScenario::root_and_tlds(start, SimDuration::from_hours(3)).compile(&u);
        let victim = u.root_servers()[0].1;
        assert!(!attack.is_dead(victim, SimTime::from_secs(start.as_secs() - 1)));
        assert!(attack.is_dead(victim, start));
        let end = start + SimDuration::from_hours(3);
        assert!(attack.is_dead(victim, SimTime::from_secs(end.as_secs() - 1)));
        assert!(!attack.is_dead(victim, end));
    }

    #[test]
    fn explicit_zone_attack_spares_others() {
        let u = universe();
        let sld = u
            .zones()
            .iter()
            .find(|z| z.apex.label_count() == 2)
            .unwrap();
        let attack = AttackScenario::zones(
            vec![sld.apex.clone()],
            SimTime::ZERO,
            SimDuration::from_hours(1),
        )
        .compile(&u);
        assert!(attack.is_dead(sld.ns[0].1, SimTime::from_mins(30)));
        assert!(!attack.is_dead(u.root_servers()[0].1, SimTime::from_mins(30)));
    }

    #[test]
    fn multiple_blackouts_union() {
        let u = universe();
        let sld = u
            .zones()
            .iter()
            .find(|z| z.apex.label_count() == 2)
            .unwrap();
        let scenario = AttackScenario::root_and_tlds(SimTime::ZERO, SimDuration::from_hours(1))
            .and(Blackout {
                zones: vec![sld.apex.clone()],
                start: SimTime::from_hours(2),
                duration: SimDuration::from_hours(1),
            });
        let attack = scenario.compile(&u);
        assert!(attack.is_dead(u.root_servers()[0].1, SimTime::from_mins(10)));
        assert!(attack.is_dead(sld.ns[0].1, SimTime::from_mins(150)));
        assert!(!attack.is_dead(sld.ns[0].1, SimTime::from_mins(10)));
    }

    #[test]
    fn none_attack_kills_nothing() {
        let u = universe();
        let attack = CompiledAttack::none();
        assert!(!attack.is_dead(u.root_servers()[0].1, SimTime::ZERO));
        assert_eq!(attack.target_count(), 0);
    }
}
