/root/repo/target/debug/deps/fig5-c6aa60a457a98b46.d: crates/dns-bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-c6aa60a457a98b46.rmeta: crates/dns-bench/src/bin/fig5.rs Cargo.toml

crates/dns-bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
