/root/repo/target/debug/deps/wire-f2bcd087f958d532.d: crates/dns-bench/benches/wire.rs Cargo.toml

/root/repo/target/debug/deps/libwire-f2bcd087f958d532.rmeta: crates/dns-bench/benches/wire.rs Cargo.toml

crates/dns-bench/benches/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
