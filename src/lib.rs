//! Facade crate for the DSN 2007 DNS-resilience reproduction.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the `examples/`) can depend on a single crate:
//!
//! * [`core`] — names, records, messages, zones, wire format.
//! * [`auth`] — authoritative name-server engine.
//! * [`resolver`] — caching resolver with the paper's resilience policies.
//! * [`sim`] — discrete-event simulator and DDoS attack scenarios.
//! * [`trace`] — synthetic namespace and query-trace generation.
//! * [`stats`] — CDFs, histograms and table emitters.
//! * [`netd`] — live UDP daemons (authoritative + recursive) and a
//!   dig-like client, binding the same engines to real sockets.
//!
//! [`prelude`] re-exports the handful of types nearly every experiment
//! touches, so `use dns_resilience::prelude::*;` is all an example needs.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build a namespace,
//! generate a workload, attack the root + TLDs and compare the vanilla
//! resolver against the paper's combined scheme.

pub use dns_auth as auth;
pub use dns_core as core;
pub use dns_netd as netd;
pub use dns_resolver as resolver;
pub use dns_sim as sim;
pub use dns_stats as stats;
pub use dns_trace as trace;

/// The types nearly every experiment touches, in one import:
///
/// ```rust
/// use dns_resilience::prelude::*;
///
/// let universe = UniverseSpec::small().build(7);
/// let trace = TraceSpec::demo().scaled(0.05).generate(&universe, 42);
/// let outcome = ExperimentSpec::new(&universe)
///     .trace(trace)
///     .scheme(Scheme::vanilla())
///     .attack(SimTime::from_days(6), &[SimDuration::from_hours(6)])
///     .run();
/// assert_eq!(outcome.attacks.len(), 1);
/// ```
pub mod prelude {
    pub use dns_core::{Name, Question, RecordType, SimDuration, SimTime, Ttl};
    pub use dns_resolver::{
        CacheBackend, CachingServer, InfraCache, LocalBackend, RecordCache, RenewalPolicy,
        ResolverConfig, ResolverConfigBuilder, RetryPolicy, RootHints, ShardedCache,
    };
    pub use dns_sim::experiment::{paper_durations, Scheme, ATTACK_START_DAY};
    pub use dns_sim::{
        AttackScenario, ExperimentSpec, RunManifest, ServerFarm, SimConfig, SimNet, Simulation,
        SweepOutcome,
    };
    pub use dns_stats::Table;
    pub use dns_trace::{Trace, TraceSpec, Universe, UniverseSpec};
}
